package comm

import (
	"sync"
	"testing"
	"time"
)

// TestISendIRecvRoundTrip: the nonblocking primitives must deliver the same
// payloads as the blocking ones, on both backends, including mixed blocking
// and nonblocking traffic on one (pair, tag) FIFO.
func TestISendIRecvRoundTrip(t *testing.T) {
	backends := []struct {
		name string
		mk   func() *Group
	}{
		{"chan", func() *Group { return New(2, 0) }},
		{"tcp", func() *Group { return tcpGroup(t, 2) }},
	}
	for _, b := range backends {
		g := b.mk()
		const tag = 7
		const msgs = 16
		g.Run(func(w *Worker) {
			if w.Rank() == 0 {
				var pending []PendingSend
				for i := 0; i < msgs; i++ {
					payload := []float32{float32(i), float32(2 * i)}
					if i%3 == 0 {
						w.SendF32(1, tag, payload) // blocking interleaved with async
					} else {
						pending = append(pending, w.ISendF32(1, tag, payload))
					}
				}
				for _, p := range pending {
					p.Wait()
				}
			} else {
				// Post all receives first, then wait in order — the demux
				// progresses regardless of when Wait runs.
				var handles []PendingRecvF32
				for i := 0; i < msgs; i++ {
					handles = append(handles, w.IRecvF32(0, tag))
				}
				for i, h := range handles {
					got := h.Wait()
					if len(got) != 2 || got[0] != float32(i) || got[1] != float32(2*i) {
						t.Errorf("%s: message %d = %v, want [%d %d]", b.name, i, got, i, 2*i)
					}
					w.RecycleF32(got)
				}
			}
		})
		if err := g.Close(); err != nil {
			t.Fatalf("%s: close: %v", b.name, err)
		}
	}
}

// TestRecycledBuffersAreReused: on the TCP backend, recycling a received
// payload must feed the next receive of the same size class from the pool
// without corrupting data that is still in flight.
func TestRecycledBuffersAreReused(t *testing.T) {
	g := tcpGroup(t, 2)
	const tag = 3
	const rounds = 20
	g.Run(func(w *Worker) {
		if w.Rank() == 0 {
			for i := 0; i < rounds; i++ {
				payload := make([]float32, 33) // odd size: exercises bucket reuse
				for j := range payload {
					payload[j] = float32(i*100 + j)
				}
				w.SendF32(1, tag, payload)
			}
		} else {
			for i := 0; i < rounds; i++ {
				got := w.RecvF32(0, tag)
				for j, v := range got {
					if v != float32(i*100+j) {
						t.Errorf("round %d element %d = %v, want %v", i, j, v, i*100+j)
					}
				}
				w.RecycleF32(got)
			}
		}
	})
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPendingSendWaitUnblocksOnAbort: a Wait parked on a dead transport must
// panic with a *TransportError instead of hanging.
func TestPendingSendWaitUnblocksOnAbort(t *testing.T) {
	ts := loopbackTransports(t, 2)
	done := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(done)
		defer func() {
			if r := recover(); r == nil {
				t.Error("Wait on an aborted transport did not panic")
			} else if _, ok := r.(*TransportError); !ok {
				t.Errorf("Wait panicked with %T, want *TransportError", r)
			}
		}()
		for i := 0; ; i++ {
			// Rank 1 never reads; eventually the socket and queue fill and
			// either the enqueue or the Wait parks until the abort fires.
			h := ts[0].ISendF32(1, 1, make([]float32, 4096))
			once.Do(func() {
				go func() {
					time.Sleep(50 * time.Millisecond)
					ts[0].Abort()
				}()
			})
			h.Wait()
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("aborted send deadlocked")
	}
	ts[1].Close()
	ts[0].Close()
}
