package comm

import (
	"testing"
	"time"
)

// TestLatencyGroupDelaysDelivery: a message received immediately after being
// sent must not be consumable before the configured link delay has passed,
// and time spent doing other work while it is in flight must count against
// the delay.
func TestLatencyGroupDelaysDelivery(t *testing.T) {
	const delay = 30 * time.Millisecond
	g := WithLatency(New(2, 0), delay)
	g.Run(func(w *Worker) {
		switch w.Rank() {
		case 0:
			w.ISendF32(1, 1, []float32{1, 2, 3})
			w.ISendF32(1, 1, []float32{4})
		case 1:
			h1 := w.IRecvF32(0, 1)
			h2 := w.IRecvF32(0, 1)
			start := time.Now()
			got := h1.Wait()
			if d := time.Since(start); d < delay/2 {
				t.Errorf("first message consumable after %v, want ≈%v", d, delay)
			}
			if len(got) != 3 || got[0] != 1 {
				t.Errorf("payload corrupted: %v", got)
			}
			// The second message was in flight the whole time the first
			// wait slept, so it must now be (nearly) free to consume.
			start = time.Now()
			if got := h2.Wait(); len(got) != 1 || got[0] != 4 {
				t.Errorf("payload corrupted: %v", got)
			}
			if d := time.Since(start); d > delay/2 {
				t.Errorf("overlapped message still cost %v of exposed wait, want ≈0", d)
			}
		}
	})
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyGroupCollectivesUnchanged: the decorator must not change any
// delivered bit — the ring AllReduce over a wrapped group produces the exact
// sums of the bare group.
func TestLatencyGroupCollectivesUnchanged(t *testing.T) {
	const k, n = 3, 17
	g := WithLatency(New(k, 0), time.Millisecond)
	g.Run(func(w *Worker) {
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(w.Rank()*100 + i)
		}
		w.AllReduceSum(data, 40)
		for i := range data {
			want := float32(0)
			for r := 0; r < k; r++ {
				want += float32(r*100 + i)
			}
			if data[i] != want {
				t.Errorf("rank %d: sum[%d] = %v, want %v", w.Rank(), i, data[i], want)
			}
		}
	})
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}
