package comm

import (
	"testing"
	"time"
)

// TestLatencyGroupDelaysDelivery: a message received immediately after being
// sent must not be consumable before the configured link delay has passed,
// and time spent doing other work while it is in flight must count against
// the delay.
func TestLatencyGroupDelaysDelivery(t *testing.T) {
	const delay = 30 * time.Millisecond
	g := WithLatency(New(2, 0), delay)
	g.Run(func(w *Worker) {
		switch w.Rank() {
		case 0:
			w.ISendF32(1, 1, []float32{1, 2, 3})
			w.ISendF32(1, 1, []float32{4})
		case 1:
			h1 := w.IRecvF32(0, 1)
			h2 := w.IRecvF32(0, 1)
			start := time.Now()
			got := h1.Wait()
			if d := time.Since(start); d < delay/2 {
				t.Errorf("first message consumable after %v, want ≈%v", d, delay)
			}
			if len(got) != 3 || got[0] != 1 {
				t.Errorf("payload corrupted: %v", got)
			}
			// The second message was in flight the whole time the first
			// wait slept, so it must now be (nearly) free to consume.
			start = time.Now()
			if got := h2.Wait(); len(got) != 1 || got[0] != 4 {
				t.Errorf("payload corrupted: %v", got)
			}
			if d := time.Since(start); d > delay/2 {
				t.Errorf("overlapped message still cost %v of exposed wait, want ≈0", d)
			}
		}
	})
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyGroupCollectivesUnchanged: the decorator must not change any
// delivered bit — the ring AllReduce over a wrapped group produces the exact
// sums of the bare group.
func TestLatencyGroupCollectivesUnchanged(t *testing.T) {
	const k, n = 3, 17
	g := WithLatency(New(k, 0), time.Millisecond)
	g.Run(func(w *Worker) {
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(w.Rank()*100 + i)
		}
		w.AllReduceSum(data, 40)
		for i := range data {
			want := float32(0)
			for r := 0; r < k; r++ {
				want += float32(r*100 + i)
			}
			if data[i] != want {
				t.Errorf("rank %d: sum[%d] = %v, want %v", w.Rank(), i, data[i], want)
			}
		}
	})
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyLedgerBounded pins the ledger leak fix: the per-stream stamp
// queue must reuse its ring slots instead of growing its backing array by
// one slot per message, so a long run with bounded in-flight messages keeps
// bounded ledger memory.
func TestLatencyLedgerBounded(t *testing.T) {
	g := WithLatency(New(2, 0), 0) // zero delay: exercise bookkeeping only
	const tag, rounds = 7, 20000
	// Lockstep rounds (the receiver acks each pair) keep at most two
	// messages in flight per stream, so any ring growth beyond a few slots
	// would be the old one-slot-per-message leak.
	g.Run(func(w *Worker) {
		for i := 0; i < rounds; i++ {
			switch w.Rank() {
			case 0:
				w.SendF32(1, tag, []float32{1, 2})
				w.SendF32(1, tag, []float32{3})
				w.RecvF32(1, tag+1)
			case 1:
				w.RecvF32(0, tag)
				w.RecvF32(0, tag)
				w.SendF32(0, tag+1, []float32{0})
			}
		}
	})
	lt := g.Worker(1).Transport().(*latencyTransport)
	q := lt.s.due[linkKey{src: 0, dst: 1, tag: tag}]
	if q == nil {
		t.Fatal("no stamp queue for the exercised stream")
	}
	if q.n != 0 {
		t.Fatalf("%d stamps left in flight, want 0", q.n)
	}
	if cap(q.buf) > 8 {
		t.Fatalf("ledger ring grew to %d slots over %d messages with ≤2 in flight", cap(q.buf), rounds)
	}
	if q.seq != 2*rounds {
		t.Fatalf("stream sequence %d, want %d", q.seq, 2*rounds)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStampQueueRing exercises push/pop wraparound and growth directly.
func TestStampQueueRing(t *testing.T) {
	var q stampQueue
	now := time.Now()
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			q.push(stamp{at: now, delay: time.Duration(round*10 + i)})
		}
		for i := 0; i < 3; i++ {
			s, ok := q.pop()
			if !ok || s.delay != time.Duration(round*10+i) {
				t.Fatalf("round %d: pop %v (ok=%v), want %d", round, s.delay, ok, round*10+i)
			}
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	if cap(q.buf) > 4 {
		t.Fatalf("queue grew to %d slots with ≤3 in flight", cap(q.buf))
	}
	// Growth preserves FIFO order across the wrap point.
	for i := 0; i < 9; i++ {
		q.push(stamp{at: now, delay: time.Duration(i)})
	}
	for i := 0; i < 9; i++ {
		if s, _ := q.pop(); s.delay != time.Duration(i) {
			t.Fatalf("after growth: pop %v, want %d", s.delay, i)
		}
	}
}

// TestLinkModelDelayComposition: per-link bases override the default, the
// bandwidth term scales with payload bytes, and the jitter draw is
// deterministic in the model seed and per-message identity.
func TestLinkModelDelayComposition(t *testing.T) {
	m := LinkModel{
		Latency:        2 * time.Millisecond,
		PerLink:        map[Link]time.Duration{{Src: 1, Dst: 0}: 9 * time.Millisecond},
		BytesPerSecond: 1e6, // 1 MB/s → 1µs per byte
	}
	if d := m.delayOf(0, 1, 5, 1000, 0); d != 2*time.Millisecond+time.Millisecond {
		t.Errorf("default link delay %v, want 3ms", d)
	}
	if d := m.delayOf(1, 0, 5, 0, 0); d != 9*time.Millisecond {
		t.Errorf("per-link override delay %v, want 9ms", d)
	}

	j := LinkModel{Jitter: time.Millisecond, Seed: 42}
	d1 := j.delayOf(0, 1, 5, 0, 3)
	d2 := j.delayOf(0, 1, 5, 0, 3)
	if d1 != d2 {
		t.Errorf("jitter not deterministic: %v vs %v", d1, d2)
	}
	if d1 < 0 || d1 >= time.Millisecond {
		t.Errorf("jitter %v outside [0, 1ms)", d1)
	}
	if j.delayOf(0, 1, 5, 0, 4) == d1 && j.delayOf(0, 1, 5, 0, 5) == d1 {
		t.Error("jitter constant across sequence numbers")
	}
	j2 := LinkModel{Jitter: time.Millisecond, Seed: 43}
	if j2.delayOf(0, 1, 5, 0, 3) == d1 && j2.delayOf(0, 1, 5, 0, 4) == j.delayOf(0, 1, 5, 0, 4) {
		t.Error("jitter ignores the seed")
	}
}
