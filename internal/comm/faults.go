package comm

import (
	"fmt"
	"sync/atomic"
)

// InjectedFault is the error recorded when WithFaults kills a rank: it
// travels inside the *TransportError every participant observes, so tests
// and the elastic supervisor can tell a deliberately injected death from an
// organic failure with errors.As.
type InjectedFault struct {
	Rank    int // the rank that was killed
	Epoch   int // epoch the kill fired at (kill-at-epoch), -1 otherwise
	Message int // payload-message ordinal the kill fired at (kill-at-message), -1 otherwise
}

func (e *InjectedFault) Error() string {
	switch {
	case e.Epoch >= 0:
		return fmt.Sprintf("injected fault: rank %d killed at epoch %d", e.Rank, e.Epoch)
	case e.Message >= 0:
		return fmt.Sprintf("injected fault: rank %d killed at message %d", e.Rank, e.Message)
	}
	return fmt.Sprintf("injected fault: rank %d killed", e.Rank)
}

// FaultPlan schedules one deterministic rank death for WithFaults. Exactly
// the triggers set to a value ≥ 0 are armed; the plan fires at most once.
type FaultPlan struct {
	// Rank is the rank to kill.
	Rank int
	// AtEpoch, when ≥ 0, kills the rank when MarkEpoch(t, AtEpoch) is
	// called on its endpoint — i.e. just before it would train that epoch
	// (epochs are counted from 0, so AtEpoch=e means e epochs completed).
	AtEpoch int
	// AtMessage, when ≥ 0, kills the rank immediately before its
	// AtMessage'th payload send (0-based, counted across the whole
	// transport lifetime). Because each rank issues its protocol sends in a
	// deterministic program order, this reproducibly kills the rank at an
	// exact point inside an epoch — the case where partially exchanged halo
	// state must be thrown away on recovery.
	AtMessage int
}

// NewFaultPlan returns a disarmed plan for rank (both triggers off).
func NewFaultPlan(rank int) FaultPlan { return FaultPlan{Rank: rank, AtEpoch: -1, AtMessage: -1} }

// KillAtEpoch returns a plan killing rank when it reaches epoch e.
func KillAtEpoch(rank, e int) FaultPlan { return FaultPlan{Rank: rank, AtEpoch: e, AtMessage: -1} }

// KillAtMessage returns a plan killing rank before its n'th payload send.
func KillAtMessage(rank, n int) FaultPlan { return FaultPlan{Rank: rank, AtEpoch: -1, AtMessage: n} }

// WithFaults wraps every endpoint of a co-located group with a
// deterministic fault injector, the failure-testing sibling of
// WithLinkModel: each plan kills its rank at a precise, reproducible point
// — the start of a given epoch, or immediately before a given payload send.
// A kill emulates what a SIGKILL does to a real process: the victim's
// underlying transport is aborted (so every peer observes the death through
// the normal failure path and surfaces a *TransportError) and the victim's
// own operation panics with a *TransportError wrapping an *InjectedFault.
// Each plan fires at most once, so a recovery loop that rebuilds a fresh
// group trains on unharmed transports afterwards.
//
// Kill-at-epoch needs the driver to tell the decorator where epochs begin:
// call MarkEpoch(w.Transport(), epoch) on each rank's endpoint before
// training that epoch (the elastic supervisor does). Kill-at-message is
// self-contained. Like WithLinkModel, this is a measurement/testing
// decorator for groups whose endpoints live in one process; apply it
// outermost when stacking decorators.
func WithFaults(g *Group, plans ...FaultPlan) *Group {
	ts := make([]Transport, g.Size())
	for i := range ts {
		ft := &faultTransport{Transport: g.workers[i].t}
		for _, p := range plans {
			if p.Rank == i {
				pc := p
				ft.plans = append(ft.plans, &pc)
			}
		}
		ts[i] = ft
	}
	return NewGroup(ts)
}

// faultTransport decorates one endpoint; only sends and epoch marks are
// intercepted (receives need no counting).
type faultTransport struct {
	Transport
	plans []*FaultPlan // plans targeting this rank
	sent  atomic.Int64 // payload messages sent so far
	fired atomic.Bool
}

// kill aborts the underlying transport (peers observe the death) and
// returns the panic value for the victim's own operation.
func (t *faultTransport) kill(f *InjectedFault) *TransportError {
	t.Transport.Abort()
	return &TransportError{Rank: t.Rank(), Err: f}
}

// MarkEpoch arms the kill-at-epoch trigger; see WithFaults. It returns the
// injected fault (already propagated to every peer) instead of panicking so
// the driver can treat the rank as dead without a recover.
func (t *faultTransport) MarkEpoch(epoch int) error {
	for _, p := range t.plans {
		if p.AtEpoch >= 0 && epoch >= p.AtEpoch && t.fired.CompareAndSwap(false, true) {
			f := &InjectedFault{Rank: t.Rank(), Epoch: epoch, Message: -1}
			return t.kill(f)
		}
	}
	return nil
}

// beforeSend fires the kill-at-message trigger; the victim's send panics
// exactly like any operation on a failed transport would.
func (t *faultTransport) beforeSend() {
	n := t.sent.Add(1) - 1 // ordinal of the send about to happen
	for _, p := range t.plans {
		if p.AtMessage >= 0 && n >= int64(p.AtMessage) && t.fired.CompareAndSwap(false, true) {
			panic(t.kill(&InjectedFault{Rank: t.Rank(), Epoch: -1, Message: int(n)}))
		}
	}
}

func (t *faultTransport) SendF32(dst, tag int, data []float32) {
	t.beforeSend()
	t.Transport.SendF32(dst, tag, data)
}

func (t *faultTransport) SendI32(dst, tag int, data []int32) {
	t.beforeSend()
	t.Transport.SendI32(dst, tag, data)
}

func (t *faultTransport) ISendF32(dst, tag int, data []float32) PendingSend {
	t.beforeSend()
	return t.Transport.ISendF32(dst, tag, data)
}

// epochMarker is the optional interface MarkEpoch dispatches on.
type epochMarker interface{ MarkEpoch(epoch int) error }

// MarkEpoch tells a decorated endpoint that the caller is about to train
// the given epoch (counted from 0). On a WithFaults endpoint with a
// matching kill-at-epoch plan it fires the kill and returns the injected
// fault; on every other transport it is a no-op returning nil. Drivers that
// want to be fault-injectable (the elastic supervisor, tests) call it at
// the top of every epoch and treat a non-nil return as this rank's death.
func MarkEpoch(t Transport, epoch int) error {
	if m, ok := t.(epochMarker); ok {
		return m.MarkEpoch(epoch)
	}
	return nil
}
