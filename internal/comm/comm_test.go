package comm

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestPointToPoint(t *testing.T) {
	c := New(2, 0)
	c.Run(func(w *Worker) {
		if w.Rank() == 0 {
			w.SendF32(1, 7, []float32{1, 2, 3})
		} else {
			got := w.RecvF32(0, 7)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("recv got %v", got)
			}
		}
	})
}

func TestTagMismatchPanics(t *testing.T) {
	c := New(2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on tag mismatch")
		}
	}()
	c.Run(func(w *Worker) {
		if w.Rank() == 0 {
			w.SendF32(1, 1, []float32{1})
		} else {
			w.RecvF32(0, 2)
		}
	})
}

func TestI32RoundTrip(t *testing.T) {
	c := New(3, 0)
	c.Run(func(w *Worker) {
		next := (w.Rank() + 1) % 3
		prev := (w.Rank() + 2) % 3
		w.SendI32(next, 5, []int32{int32(w.Rank())})
		got := w.RecvI32(prev, 5)
		if int(got[0]) != prev {
			t.Errorf("rank %d got %v from %d", w.Rank(), got, prev)
		}
	})
}

func TestAllReduceSum(t *testing.T) {
	for _, m := range []int{1, 2, 4, 7} {
		c := New(m, 0)
		c.Run(func(w *Worker) {
			data := []float32{float32(w.Rank()), 1}
			w.AllReduceSum(data, 100)
			wantFirst := float32(m*(m-1)) / 2
			if data[0] != wantFirst || data[1] != float32(m) {
				t.Errorf("m=%d rank=%d allreduce got %v", m, w.Rank(), data)
			}
		})
	}
}

func TestAllReduceMatchesSerialSum(t *testing.T) {
	const m = 5
	c := New(m, 0)
	inputs := make([][]float32, m)
	want := make([]float32, 16)
	for r := 0; r < m; r++ {
		inputs[r] = make([]float32, 16)
		for i := range inputs[r] {
			inputs[r][i] = float32(r*100 + i)
			want[i] += inputs[r][i]
		}
	}
	c.Run(func(w *Worker) {
		data := make([]float32, 16)
		copy(data, inputs[w.Rank()])
		w.AllReduceSum(data, 0)
		for i := range data {
			if data[i] != want[i] {
				t.Errorf("rank %d elem %d: got %v want %v", w.Rank(), i, data[i], want[i])
			}
		}
	})
}

func TestAllGatherI32(t *testing.T) {
	const m = 4
	c := New(m, 0)
	c.Run(func(w *Worker) {
		own := make([]int32, w.Rank()) // variable lengths, rank r sends r items
		for i := range own {
			own[i] = int32(w.Rank() * 10)
		}
		got := w.AllGatherI32(own, 3)
		for r := 0; r < m; r++ {
			if len(got[r]) != r {
				t.Errorf("rank %d: got[%d] has %d items, want %d", w.Rank(), r, len(got[r]), r)
			}
			for _, v := range got[r] {
				if int(v) != r*10 {
					t.Errorf("rank %d: wrong content from %d: %v", w.Rank(), r, v)
				}
			}
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	const m = 6
	c := New(m, 0)
	var phase atomic.Int32
	var violations atomic.Int32
	c.Run(func(w *Worker) {
		for round := int32(1); round <= 5; round++ {
			phase.Store(round)
			w.Barrier()
			if phase.Load() != round {
				violations.Add(1)
			}
			w.Barrier()
		}
	})
	if violations.Load() > 0 {
		t.Fatalf("%d barrier violations", violations.Load())
	}
}

func TestByteAccounting(t *testing.T) {
	c := New(2, 0)
	c.Run(func(w *Worker) {
		if w.Rank() == 0 {
			w.SendF32(1, 1, make([]float32, 10)) // 40 bytes
			w.SendI32(1, 2, make([]int32, 5))    // 20 bytes
		} else {
			w.RecvF32(0, 1)
			w.RecvI32(0, 2)
		}
	})
	if got := c.BytesSent(0); got != 60 {
		t.Fatalf("BytesSent(0) = %d, want 60", got)
	}
	if got := c.BytesSent(1); got != 0 {
		t.Fatalf("BytesSent(1) = %d, want 0", got)
	}
	if got := c.MessagesSent(0); got != 2 {
		t.Fatalf("MessagesSent(0) = %d, want 2", got)
	}
	if got := c.TotalBytesSent(); got != 60 {
		t.Fatalf("TotalBytesSent = %d", got)
	}
	c.ResetCounters()
	if c.TotalBytesSent() != 0 {
		t.Fatal("ResetCounters did not zero")
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	c := New(3, 0)
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("expected panic from worker")
		}
	}()
	c.Run(func(w *Worker) {
		if w.Rank() == 2 {
			panic("worker failure")
		}
	})
}

func TestMessageOrderingPerPair(t *testing.T) {
	c := New(2, 0)
	c.Run(func(w *Worker) {
		if w.Rank() == 0 {
			for i := 0; i < 50; i++ {
				w.SendF32(1, i, []float32{float32(i)})
			}
		} else {
			for i := 0; i < 50; i++ {
				got := w.RecvF32(0, i)
				if got[0] != float32(i) {
					t.Errorf("out of order: got %v at %d", got[0], i)
				}
			}
		}
	})
}

func TestAllToAllExchangeDoesNotDeadlock(t *testing.T) {
	const m = 8
	c := New(m, 0)
	done := make(chan struct{})
	go func() {
		c.Run(func(w *Worker) {
			for round := 0; round < 10; round++ {
				for dst := 0; dst < m; dst++ {
					if dst != w.Rank() {
						w.SendF32(dst, round, make([]float32, 100))
					}
				}
				for src := 0; src < m; src++ {
					if src != w.Rank() {
						w.RecvF32(src, round)
					}
				}
				w.Barrier()
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("all-to-all exchange deadlocked")
	}
}

func TestWorkerRankBounds(t *testing.T) {
	c := New(2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Worker(5)
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 0)
}
