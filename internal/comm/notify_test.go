package comm

import (
	"net"
	"sync"
	"testing"
	"time"
)

// notifyPairTCP bootstraps a k-rank loopback TCP mesh for notification
// tests.
func notifyMeshTCP(t *testing.T, k int) []*TCPTransport {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]*TCPTransport, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := TCPConfig{Rank: r, World: k, Rendezvous: ln.Addr().String(), Timeout: 10 * time.Second}
			if r == 0 {
				cfg.RendezvousListener = ln
			}
			ts[r], errs[r] = DialTCP(cfg)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, tp := range ts {
			tp.Close()
		}
	})
	return ts
}

// TestNotifyRecvBothBackends: the select-any primitive must deliver one
// token per notified message on both backends, whether the message arrives
// before or after the registration, and the matching Wait must return the
// payload.
func TestNotifyRecvBothBackends(t *testing.T) {
	run := func(t *testing.T, send func(dst, tag int, data []float32), recvEnd Transport) {
		notify := make(chan int, 4)

		// Message before registration.
		send(recvEnd.Rank(), 7, []float32{1, 2})
		time.Sleep(20 * time.Millisecond) // let the TCP demux route it
		h := recvEnd.IRecvF32Notify(0, 7, notify, 42)
		select {
		case tok := <-notify:
			if tok != 42 {
				t.Fatalf("token %d, want 42", tok)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("no notification for an already-arrived message")
		}
		if got := h.Wait(); len(got) != 2 || got[0] != 1 {
			t.Fatalf("payload corrupted: %v", got)
		}

		// Registration before message.
		h = recvEnd.IRecvF32Notify(0, 7, notify, 43)
		select {
		case tok := <-notify:
			t.Fatalf("spurious token %d before any message", tok)
		case <-time.After(30 * time.Millisecond):
		}
		send(recvEnd.Rank(), 7, []float32{9})
		select {
		case tok := <-notify:
			if tok != 43 {
				t.Fatalf("token %d, want 43", tok)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("no notification after send")
		}
		if got := h.Wait(); len(got) != 1 || got[0] != 9 {
			t.Fatalf("payload corrupted: %v", got)
		}
	}

	t.Run("chan", func(t *testing.T) {
		g := New(2, 0)
		defer g.Close()
		run(t, func(dst, tag int, data []float32) {
			g.Worker(0).SendF32(dst, tag, data)
		}, g.Worker(1).Transport())
	})
	t.Run("tcp", func(t *testing.T) {
		ts := notifyMeshTCP(t, 2)
		run(t, func(dst, tag int, data []float32) {
			ts[0].SendF32(dst, tag, data)
		}, ts[1])
	})
}

// TestNotifyArrivalOrder: with several posted receives, tokens must arrive
// in message-arrival order, not rank order — the property the arrival-order
// halo drain is built on.
func TestNotifyArrivalOrder(t *testing.T) {
	const k = 4
	g := New(k, 0)
	defer g.Close()
	var wg sync.WaitGroup
	// Peers 1..3 send to rank 0 in reverse rank order, spaced far enough
	// apart that delivery order is unambiguous.
	for i, src := range []int{3, 2, 1} {
		wg.Add(1)
		go func(i, src int) {
			defer wg.Done()
			time.Sleep(time.Duration(i*60) * time.Millisecond)
			g.Worker(src).SendF32(0, 5, []float32{float32(src)})
		}(i, src)
	}
	notify := make(chan int, k)
	recv := g.Worker(0)
	hs := make(map[int]PendingRecvF32)
	for src := 1; src < k; src++ {
		hs[src] = recv.IRecvF32Notify(src, 5, notify, src)
	}
	var order []int
	for i := 0; i < k-1; i++ {
		select {
		case src := <-notify:
			if got := hs[src].Wait(); len(got) != 1 || got[0] != float32(src) {
				t.Fatalf("payload from %d corrupted: %v", src, got)
			}
			order = append(order, src)
		case <-time.After(5 * time.Second):
			t.Fatal("drain stalled")
		}
	}
	wg.Wait()
	if order[0] != 3 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("tokens in order %v, want send order [3 2 1]", order)
	}
}

// TestNotifyFlushOnAbort: a drain blocked on a notification must be woken
// by a transport failure, and the matching receive must then panic with the
// transport error instead of hanging.
func TestNotifyFlushOnAbort(t *testing.T) {
	g := New(2, 0)
	notify := make(chan int, 1)
	h := g.Worker(1).Transport().IRecvF32Notify(0, 9, notify, 1)
	go g.Worker(0).Transport().Abort()
	select {
	case <-notify:
	case <-time.After(2 * time.Second):
		t.Fatal("abort did not flush the posted notification")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Wait after abort must panic with a transport error")
		}
	}()
	h.Wait()
}

// TestNotifyFlushOnPeerClose (TCP): a peer's graceful goodbye must wake
// notifications posted against it.
func TestNotifyFlushOnPeerClose(t *testing.T) {
	ts := notifyMeshTCP(t, 2)
	notify := make(chan int, 1)
	h := ts[1].IRecvF32Notify(0, 9, notify, 1)
	go ts[0].Close()
	select {
	case <-notify:
	case <-time.After(5 * time.Second):
		t.Fatal("peer close did not flush the posted notification")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Wait after peer close must panic")
		}
	}()
	h.Wait()
}

// TestNotifyAfterPeerClose (TCP): a notification posted AFTER the peer's
// goodbye has been processed must also fire immediately — the peer's read
// loop is gone, so nobody else could ever wake the waiter — and the
// matching receive reports the departure.
func TestNotifyAfterPeerClose(t *testing.T) {
	ts := notifyMeshTCP(t, 2)
	if err := ts[0].Close(); err != nil {
		t.Fatal(err)
	}
	// Wait until rank 1's read loop has demuxed the goodbye; only then is
	// the "registration races ahead of the departure marker" window closed
	// and the post-departure path the one actually exercised.
	select {
	case <-ts[1].peers[0].gone:
	case <-time.After(5 * time.Second):
		t.Fatal("rank 1 never observed the goodbye")
	}
	notify := make(chan int, 1)
	h := ts[1].IRecvF32Notify(0, 9, notify, 7)
	select {
	case tok := <-notify:
		if tok != 7 {
			t.Fatalf("token %d, want 7", tok)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("notification posted after peer close never fired")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Wait after departed-peer notification must panic")
		}
	}()
	h.Wait()
}

// TestNotifyLatencyOrderInversion: under a skewed LinkModel, notification
// order must follow the modeled completion times — the fast link's message
// overtakes the slow link's even though the slow one was sent first and has
// the lower rank.
func TestNotifyLatencyOrderInversion(t *testing.T) {
	const k = 3
	g := WithLinkModel(New(k, 0), LinkModel{
		Latency: time.Millisecond,
		PerLink: map[Link]time.Duration{
			{Src: 1, Dst: 0}: 150 * time.Millisecond,
			{Src: 2, Dst: 0}: 10 * time.Millisecond,
		},
	})
	defer g.Close()
	g.Run(func(w *Worker) {
		switch w.Rank() {
		case 1:
			w.SendF32(0, 3, []float32{1})
		case 2:
			time.Sleep(20 * time.Millisecond) // rank 1's send is long gone
			w.SendF32(0, 3, []float32{2})
		case 0:
			notify := make(chan int, k)
			h1 := w.IRecvF32Notify(1, 3, notify, 1)
			h2 := w.IRecvF32Notify(2, 3, notify, 2)
			first := <-notify
			second := <-notify
			if first != 2 || second != 1 {
				t.Errorf("completion order (%d,%d), want fast link first (2,1)", first, second)
			}
			if got := h2.Wait(); got[0] != 2 {
				t.Errorf("fast payload corrupted: %v", got)
			}
			if got := h1.Wait(); got[0] != 1 {
				t.Errorf("slow payload corrupted: %v", got)
			}
		}
	})
}
