package comm

import (
	"bytes"
	"encoding/binary"
	"math"
	"slices"
	"testing"
)

func TestFrameF32BitExactRoundTrip(t *testing.T) {
	in := []float32{0, -0, 1.5, float32(math.Inf(1)), float32(math.NaN()), math.SmallestNonzeroFloat32}
	enc, err := appendFrameF32(nil, 123, in)
	if err != nil {
		t.Fatal(err)
	}
	fr, n, err := decodeFrame(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if fr.tag != 123 || fr.dtype != dtypeF32 {
		t.Fatalf("header round-trip: %+v", fr)
	}
	out := payloadF32(fr.payload)
	for i := range in {
		if math.Float32bits(in[i]) != math.Float32bits(out[i]) {
			t.Fatalf("elem %d: %x != %x", i, math.Float32bits(in[i]), math.Float32bits(out[i]))
		}
	}
}

func TestFrameI32RoundTrip(t *testing.T) {
	in := []int32{0, -1, math.MinInt32, math.MaxInt32, 7}
	enc, err := appendFrameI32(nil, 0, in)
	if err != nil {
		t.Fatal(err)
	}
	fr, _, err := decodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out := payloadI32(fr.payload); !slices.Equal(in, out) {
		t.Fatalf("%v != %v", in, out)
	}
}

func TestReadFrameMatchesDecodeFrame(t *testing.T) {
	enc, err := appendFrameI32(nil, 9, []int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := readFrame(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	fr2, _, err := decodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if fr.tag != fr2.tag || fr.dtype != fr2.dtype || !bytes.Equal(fr.payload, fr2.payload) {
		t.Fatalf("readFrame %+v != decodeFrame %+v", fr, fr2)
	}
}

func TestFrameRejectsMalformedInput(t *testing.T) {
	if _, err := appendFrameBytes(nil, -1, dtypeF32, nil); err == nil {
		t.Fatal("negative tag accepted")
	}
	if _, err := appendFrameBytes(nil, 0, 99, nil); err == nil {
		t.Fatal("unknown dtype accepted")
	}
	if _, err := appendFrameBytes(nil, 0, dtypeF32, make([]byte, 6)); err == nil {
		t.Fatal("unaligned payload accepted")
	}
	valid, _ := appendFrameF32(nil, 1, []float32{1, 2})
	oversize := slices.Clone(valid)
	binary.LittleEndian.PutUint32(oversize[8:], maxFrameElems+1)
	if _, _, err := decodeFrame(oversize); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	reserved := slices.Clone(valid)
	reserved[5] = 1
	if _, _, err := decodeFrame(reserved); err == nil {
		t.Fatal("non-zero reserved byte accepted")
	}
}

// FuzzFrameRoundTrip asserts the codec's two contracts under arbitrary
// input: every encodable frame decodes back to identical bits, and every
// byte string — truncated frames, oversized lengths, garbage — is rejected
// with an error, never a panic or an over-read.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint32(0), byte(0), []byte{})
	f.Add(uint32(910), byte(1), []byte{1, 2, 3, 4})
	f.Add(uint32(tagBye), byte(2), make([]byte, 64))
	f.Add(uint32(math.MaxUint32), byte(0), []byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, tag uint32, dtype byte, raw []byte) {
		payload := raw[:len(raw)/4*4]
		enc, err := appendFrameBytes(nil, int(tag), dtype%3, payload)
		if err != nil {
			t.Fatalf("encoding a valid frame failed: %v", err)
		}
		fr, n, err := decodeFrame(enc)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if n != len(enc) || fr.tag != int(tag) || fr.dtype != dtype%3 || !bytes.Equal(fr.payload, payload) {
			t.Fatalf("round trip mismatch: consumed %d of %d, got %+v", n, len(enc), fr)
		}

		// Any strict prefix is truncated and must be rejected, not panic.
		for _, cut := range []int{0, 1, frameHeaderSize - 1, len(enc) - 1} {
			if cut < 0 || cut >= len(enc) {
				continue
			}
			if _, _, err := decodeFrame(enc[:cut]); err == nil {
				t.Fatalf("truncation to %d of %d bytes accepted", cut, len(enc))
			}
			if _, err := readFrame(bytes.NewReader(enc[:cut])); err == nil {
				t.Fatalf("readFrame accepted truncation to %d bytes", cut)
			}
		}

		// A length field pointing past the cap must be rejected before any
		// allocation happens.
		oversize := slices.Clone(enc)
		binary.LittleEndian.PutUint32(oversize[8:], maxFrameElems+1)
		if _, _, err := decodeFrame(oversize); err == nil {
			t.Fatal("oversized length accepted")
		}

		// Raw fuzz bytes interpreted as a frame: any outcome but a panic.
		decodeFrame(raw)
		readFrame(bytes.NewReader(raw))
	})
}
