package comm

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Reserved tag space at the top of the uint32 range, used for
// transport-internal control frames. Application tags must stay below
// tagReservedBase; the training protocol's tags are all small integers.
const (
	tagReservedBase = 1 << 31
	tagBarrierEnter = tagReservedBase + 0
	tagBarrierLeave = tagReservedBase + 1
	tagBye          = tagReservedBase + 2
	tagHeartbeat    = tagReservedBase + 3
)

// TransportError is the panic value raised by TCPTransport operations once
// the transport has failed (a peer died, a connection broke, or Abort was
// called). RankTrainer.TrainEpoch converts it into an ordinary error at the
// epoch boundary.
type TransportError struct {
	Rank int
	Err  error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("comm: rank %d: %v", e.Rank, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// TCPConfig configures DialTCP.
type TCPConfig struct {
	Rank  int
	World int
	// Rendezvous is the host:port every rank can reach; rank 0 listens
	// there during bootstrap to collect and broadcast the address table.
	Rendezvous string
	// ListenHost is the interface data listeners bind and advertise
	// (default 127.0.0.1, which covers single-machine multi-process runs;
	// multi-host deployments must set it to the rank's reachable address).
	ListenHost string
	// QueueCap bounds the per-(peer,tag) receive queue depth; 0 selects the
	// same default (256) and bound derivation as New — a full queue blocks
	// the demux goroutine, which backpressures the connection; frames are
	// never dropped.
	QueueCap int
	// Timeout bounds the whole bootstrap (rendezvous plus mesh dial);
	// default 30s. After bootstrap, failure detection is event-driven: a
	// dying peer resets its TCP connections, which every surviving rank
	// observes directly (the mesh is fully connected). HeartbeatTimeout
	// adds detection for peers that are wedged rather than dead.
	Timeout time.Duration
	// HeartbeatInterval, when positive, makes the endpoint emit a control
	// heartbeat frame to every peer on that cadence so idle links carry
	// traffic. Heartbeats are excluded from payload byte accounting.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout, when positive, arms the wedged-peer detector: if no
	// frame (data or heartbeat) arrives from a peer for this long, the
	// transport fails with a pointed error — catching a peer that is alive
	// at the TCP level but stuck (deadlocked, paused, partitioned), which a
	// connection reset would never report. Every rank of a mesh must agree
	// on heartbeat settings, and HeartbeatTimeout should be several
	// intervals (default 4×HeartbeatInterval when only the interval is
	// set). Zero on both fields — the default — disables the machinery
	// entirely, preserving the event-driven-only behavior.
	HeartbeatTimeout time.Duration
	// RendezvousListener, if non-nil, is a pre-bound listener rank 0 uses
	// instead of listening on Rendezvous — this removes pick-a-free-port
	// races in tests. DialTCP takes ownership and closes it.
	RendezvousListener net.Listener
}

// outMsg is one serialized frame queued for a peer's writer goroutine.
type outMsg struct {
	buf []byte // pooled wire bytes, returned to wireBufs after the write
	seq uint64 // monotone per peer; writtenSeq reaches it after the write
}

// sendQueueCap bounds the frames queued toward one peer's writer goroutine;
// a full queue blocks the sender (backpressure, never drops), matching the
// bounded per-pair queues on the receive side.
const sendQueueCap = 128

// tcpPeer is one established connection to another rank.
type tcpPeer struct {
	rank int
	conn *net.TCPConn
	br   *bufio.Reader

	// Outgoing frames flow through a writer goroutine so ISend takes the
	// socket write off the caller's critical path: senders serialize into a
	// pooled buffer (so their payload is free immediately), assign the next
	// seq, and enqueue; the writer performs the conn.Write and advances
	// writtenSeq under wmu. Blocking sends and PendingSend.Wait park on
	// wcond until their seq is written or the transport fails. All frames —
	// data and control — use the queue, so the per-pair FIFO order callers
	// observe is exactly the enqueue order.
	sendQ      chan outMsg
	wmu        sync.Mutex
	wcond      *sync.Cond
	writtenSeq uint64
	enqSeq     uint64 // touched only by the rank's goroutine

	qmu    sync.Mutex
	queues map[int]chan frame
	// gone is closed by the read loop after the peer's goodbye frame has
	// been demuxed: every frame the peer sent is already queued, and no
	// more will come.
	gone chan struct{}
}

// TCPTransport is one rank's endpoint on the socket backend: one persistent
// duplex TCP connection per peer pair, a demux goroutine per connection
// routing frames into per-(peer,tag) queues, and rank bootstrap through a
// rendezvous address. Created by DialTCP.
//
// Error handling is fail-fast: any connection error (a peer process died,
// was killed, or called Abort) fails the whole transport — every blocked
// Recv and subsequent Send panics with a *TransportError naming the dead
// peer instead of deadlocking. Because the mesh is fully connected, one
// rank's death is observed by every survivor without timeouts or
// heartbeats.
type TCPTransport struct {
	rank, world int
	queueCap    int
	peers       []*tcpPeer // indexed by rank; nil at own slot

	// Heartbeat machinery (zero when disabled): hbInterval drives the
	// sender goroutine, hbTimeout arms the per-connection read deadline
	// that declares a silent peer wedged. hbStop is closed (once) by Close
	// so the sender goroutine is provably gone before the send queues are
	// closed out from under it.
	hbInterval time.Duration
	hbTimeout  time.Duration
	hbStop     chan struct{}
	hbStopOn   sync.Once
	hbWG       sync.WaitGroup

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
	wireSent  atomic.Int64

	// Steady-state buffer pools (see pool.go): serialized outgoing frames,
	// incoming frame payloads, and decoded float32 receive payloads.
	wireBufs bufPool[byte]
	recvBufs bufPool[byte]
	f32Bufs  bufPool[float32]

	// nreg matches consumable f32 frames (stamped by the demux goroutines)
	// against notify-posted receives; see IRecvF32Notify.
	nreg notifyReg

	closed atomic.Bool
	// closeCh is closed by Close so demux goroutines blocked on a full
	// per-(peer,tag) queue can exit: a closing endpoint will never drain
	// those queues (Recv is no longer called), and without the signal a
	// graceful Close of an endpoint with backpressured queues would
	// deadlock in readers.Wait.
	closeCh chan struct{}
	failErr error // written once before failCh closes
	failOn  sync.Once
	failCh  chan struct{}
	readers sync.WaitGroup
	writers sync.WaitGroup
}

// DialTCP bootstraps the full mesh for one rank and returns its endpoint.
// Every rank binds a data listener, registers (rank, address) with the
// rendezvous point served by rank 0, receives the complete address table,
// and then each pair establishes one duplex connection (the higher rank
// dials the lower). DialTCP returns once all world−1 connections are up.
func DialTCP(cfg TCPConfig) (*TCPTransport, error) {
	t, err := newTCPTransport(&cfg)
	if err != nil {
		return nil, err
	}
	if cfg.World == 1 || cfg.Rank != 0 {
		if cfg.RendezvousListener != nil {
			cfg.RendezvousListener.Close() // only rank 0 serves the rendezvous
		}
	}
	if cfg.World == 1 {
		return t, nil // a lone rank needs no sockets
	}
	deadline := time.Now().Add(cfg.Timeout)

	dataLn, err := net.Listen("tcp", net.JoinHostPort(cfg.ListenHost, "0"))
	if err != nil {
		return nil, fmt.Errorf("comm: rank %d: data listener: %w", cfg.Rank, err)
	}
	defer dataLn.Close()

	addrs, err := rendezvous(cfg, dataLn.Addr().String(), deadline)
	if err != nil {
		return nil, err
	}
	return t, t.finishDial(cfg, dataLn, addrs, deadline)
}

// DialTCPMesh establishes the full mesh from an already-agreed address
// table, skipping the rendezvous phase: addrs[r] must be rank r's data
// listener address, and dataLn must be the listener this rank advertised as
// addrs[cfg.Rank]. It is the re-admission entry point the elastic recovery
// loop uses — after a generation-bumped rendezvous has produced a fresh
// table, every participant (survivor or replacement) meshes through here.
// The listener is closed before returning, like DialTCP's.
func DialTCPMesh(cfg TCPConfig, dataLn net.Listener, addrs []string) (*TCPTransport, error) {
	t, err := newTCPTransport(&cfg)
	if err != nil {
		return nil, err
	}
	if len(addrs) != cfg.World {
		return nil, fmt.Errorf("comm: rank %d: address table has %d entries, world is %d",
			cfg.Rank, len(addrs), cfg.World)
	}
	defer dataLn.Close()
	if cfg.World == 1 {
		return t, nil
	}
	return t, t.finishDial(cfg, dataLn, addrs, time.Now().Add(cfg.Timeout))
}

// newTCPTransport validates and normalizes cfg and builds the empty endpoint.
func newTCPTransport(cfg *TCPConfig) (*TCPTransport, error) {
	if cfg.World <= 0 {
		return nil, fmt.Errorf("comm: world size %d", cfg.World)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.World {
		return nil, fmt.Errorf("comm: rank %d out of [0,%d)", cfg.Rank, cfg.World)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = defaultQueueCap
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.ListenHost == "" {
		cfg.ListenHost = "127.0.0.1"
	}
	if cfg.HeartbeatInterval > 0 && cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 4 * cfg.HeartbeatInterval
	}
	return &TCPTransport{
		rank:       cfg.Rank,
		world:      cfg.World,
		queueCap:   cfg.QueueCap,
		peers:      make([]*tcpPeer, cfg.World),
		hbInterval: cfg.HeartbeatInterval,
		hbTimeout:  cfg.HeartbeatTimeout,
		hbStop:     make(chan struct{}),
		closeCh:    make(chan struct{}),
		failCh:     make(chan struct{}),
	}, nil
}

// finishDial connects the mesh over an agreed address table and starts the
// per-peer service goroutines plus the heartbeat sender.
func (t *TCPTransport) finishDial(cfg TCPConfig, dataLn net.Listener, addrs []string, deadline time.Time) error {
	if err := t.connectMesh(cfg, dataLn, addrs, deadline); err != nil {
		for _, p := range t.peers {
			if p != nil {
				p.conn.Close()
			}
		}
		return err
	}
	for _, p := range t.peers {
		if p != nil {
			t.readers.Add(1)
			go t.readLoop(p)
			t.writers.Add(1)
			go t.writeLoop(p)
		}
	}
	if t.hbInterval > 0 {
		t.hbWG.Add(1)
		go t.heartbeatLoop()
	}
	return nil
}

// heartbeatLoop emits a control heartbeat to every peer each interval so
// idle links still carry traffic for the wedged-peer detector on the other
// side. It exits on Close (hbStop) or transport failure; isend's failure
// panic is absorbed, since the failure is already recorded.
func (t *TCPTransport) heartbeatLoop() {
	defer t.hbWG.Done()
	tick := time.NewTicker(t.hbInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case <-t.hbStop:
			return
		case <-t.failCh:
			return
		}
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			// Heartbeats bypass isend: the per-peer enqSeq is owned by the
			// rank's goroutine, so the sender enqueues an untracked frame
			// (seq 0 — the writer skips completion bookkeeping for it). A
			// full send queue means data is already flowing, which is all a
			// heartbeat would prove; skip rather than block.
			buf, err := appendFrameBytes(t.wireBufs.get(frameHeaderSize)[:0], tagHeartbeat, dtypeCtrl, nil)
			if err != nil {
				t.wireBufs.put(buf)
				continue
			}
			select {
			case p.sendQ <- outMsg{buf: buf}:
			default:
				t.wireBufs.put(buf)
			}
		}
	}
}

// stopHeartbeats halts the heartbeat sender and waits for it; safe to call
// multiple times and from concurrent closers.
func (t *TCPTransport) stopHeartbeats() {
	t.hbStopOn.Do(func() { close(t.hbStop) })
	t.hbWG.Wait()
}

// rendezvous exchanges (rank, dataAddr) registrations for the full address
// table. Rank 0 serves; other ranks dial with capped exponential backoff
// until rank 0 is up or the deadline expires.
//
// The server is hardened against misconfigured clients: an out-of-range
// rank gets a pointed "ERR ..." reply and its connection closed, without
// aborting the round — the correctly configured cohort still bootstraps. A
// re-registration of a rank whose earlier connection is still held (a
// client that timed out and redialed, or a recovering rank rejoining across
// generations) replaces the stale registration instead of wedging.
func rendezvous(cfg TCPConfig, myAddr string, deadline time.Time) ([]string, error) {
	if cfg.Rank == 0 {
		ln := cfg.RendezvousListener
		if ln == nil {
			var err error
			ln, err = net.Listen("tcp", cfg.Rendezvous)
			if err != nil {
				return nil, fmt.Errorf("comm: rank 0: rendezvous listener %s: %w", cfg.Rendezvous, err)
			}
		}
		defer ln.Close()
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		addrs := make([]string, cfg.World)
		addrs[0] = myAddr
		conns := make([]net.Conn, cfg.World) // live registration conn per rank
		registered := 0
		defer func() {
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
		}()
		for registered < cfg.World-1 {
			conn, err := ln.Accept()
			if err != nil {
				return nil, fmt.Errorf("comm: rank 0: rendezvous accept (%d of %d ranks registered): %w",
					registered, cfg.World-1, err)
			}
			conn.SetDeadline(deadline)
			var r int
			var addr string
			if _, err := fmt.Fscanf(bufio.NewReader(conn), "HELLO %d %s\n", &r, &addr); err != nil {
				fmt.Fprintf(conn, "ERR malformed rendezvous hello: %v\n", err)
				conn.Close()
				continue
			}
			if r <= 0 || r >= cfg.World {
				fmt.Fprintf(conn, "ERR rank %d outside [1,%d) — check -rank/-world against the cohort\n", r, cfg.World)
				conn.Close()
				continue
			}
			if conns[r] != nil {
				// Replace the stale registration: the old connection belongs
				// to a client that gave up or died; the latest dialer wins.
				conns[r].Close()
				registered--
			}
			conns[r] = conn
			addrs[r] = addr
			registered++
		}
		table := "ADDRS " + strings.Join(addrs, " ") + "\n"
		for _, c := range conns {
			if c == nil {
				continue
			}
			if _, err := c.Write([]byte(table)); err != nil {
				return nil, fmt.Errorf("comm: rank 0: rendezvous broadcast: %w", err)
			}
		}
		return addrs, nil
	}

	conn, err := dialRetry(cfg.Rendezvous, cfg.Rank, deadline)
	if err != nil {
		return nil, fmt.Errorf("comm: rank %d: rendezvous %s unreachable: %w", cfg.Rank, cfg.Rendezvous, err)
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	if _, err := fmt.Fprintf(conn, "HELLO %d %s\n", cfg.Rank, myAddr); err != nil {
		return nil, fmt.Errorf("comm: rank %d: rendezvous register: %w", cfg.Rank, err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("comm: rank %d: rendezvous table: %w", cfg.Rank, err)
	}
	if msg, ok := strings.CutPrefix(line, "ERR "); ok {
		return nil, fmt.Errorf("comm: rank %d: rendezvous rejected registration: %s", cfg.Rank, strings.TrimSpace(msg))
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != cfg.World+1 || fields[0] != "ADDRS" {
		return nil, fmt.Errorf("comm: rank %d: malformed rendezvous table %q", cfg.Rank, line)
	}
	return fields[1:], nil
}

// dialRetry dials addr with capped exponential backoff plus deterministic
// jitter until the overall deadline: the first attempts are near-immediate
// (rank 0 is usually a few milliseconds behind), later ones spread out so a
// large cohort hammering a not-yet-up rendezvous backs off instead of
// spinning. The per-rank jitter stream keeps retries from synchronizing
// without making bootstrap timing nondeterministic across runs.
func dialRetry(addr string, rank int, deadline time.Time) (net.Conn, error) {
	const (
		baseDelay = 10 * time.Millisecond
		maxDelay  = 640 * time.Millisecond
	)
	delay := baseDelay
	jseq := uint64(0)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		// Sleep delay/2 + jitter in [0, delay/2): full backoff spread, never
		// past the deadline.
		jseq++
		sleep := delay/2 + time.Duration(jitterHash(uint64(rank), rank, 0, 0, jseq)%uint64(delay/2+1))
		if until := time.Until(deadline); sleep > until {
			sleep = until
		}
		if sleep > 0 {
			time.Sleep(sleep)
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

// connectMesh establishes one duplex connection per peer pair: this rank
// dials every lower rank and accepts from every higher rank.
func (t *TCPTransport) connectMesh(cfg TCPConfig, dataLn net.Listener, addrs []string, deadline time.Time) error {
	type result struct {
		peer *tcpPeer
		err  error
	}
	want := cfg.World - 1
	results := make(chan result, cfg.World)
	var producers sync.WaitGroup

	if tl, ok := dataLn.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	producers.Add(1 + cfg.Rank)
	go func() { // accept side: peers with a higher rank dial us
		defer producers.Done()
		for i := 0; i < cfg.World-1-cfg.Rank; i++ {
			conn, err := dataLn.Accept()
			if err != nil {
				results <- result{err: fmt.Errorf("comm: rank %d: mesh accept: %w", cfg.Rank, err)}
				return
			}
			conn.SetDeadline(deadline)
			br := bufio.NewReaderSize(conn, 1<<16)
			var r int
			if _, err := fmt.Fscanf(br, "PEER %d\n", &r); err != nil {
				conn.Close()
				results <- result{err: fmt.Errorf("comm: rank %d: bad mesh hello: %w", cfg.Rank, err)}
				return
			}
			if r <= cfg.Rank || r >= cfg.World {
				conn.Close()
				results <- result{err: fmt.Errorf("comm: rank %d: mesh hello from unexpected rank %d", cfg.Rank, r)}
				return
			}
			results <- result{peer: &tcpPeer{rank: r, conn: conn.(*net.TCPConn), br: br}}
		}
	}()
	for j := 0; j < cfg.Rank; j++ { // dial side: we dial every lower rank
		go func(j int) {
			defer producers.Done()
			conn, err := net.DialTimeout("tcp", addrs[j], time.Until(deadline))
			if err != nil {
				results <- result{err: fmt.Errorf("comm: rank %d: dial peer %d at %s: %w", cfg.Rank, j, addrs[j], err)}
				return
			}
			conn.SetDeadline(deadline)
			if _, err := fmt.Fprintf(conn, "PEER %d\n", cfg.Rank); err != nil {
				conn.Close()
				results <- result{err: fmt.Errorf("comm: rank %d: mesh hello to peer %d: %w", cfg.Rank, j, err)}
				return
			}
			results <- result{peer: &tcpPeer{rank: j, conn: conn.(*net.TCPConn), br: bufio.NewReaderSize(conn, 1<<16)}}
		}(j)
	}
	go func() { producers.Wait(); close(results) }()

	// On error, late results must not leak their connections: the caller
	// closes dataLn (unblocking the accept goroutine), and this drain
	// goroutine disposes of whatever the producers still deliver.
	fail := func(err error) error {
		go func() {
			for res := range results {
				if res.peer != nil {
					res.peer.conn.Close()
				}
			}
		}()
		return err
	}
	for i := 0; i < want; i++ {
		res, ok := <-results
		if !ok {
			return fail(fmt.Errorf("comm: rank %d: mesh bootstrap ended with %d of %d peers", cfg.Rank, i, want))
		}
		if res.err != nil {
			return fail(res.err)
		}
		p := res.peer
		if t.peers[p.rank] != nil {
			p.conn.Close()
			return fail(fmt.Errorf("comm: rank %d: duplicate connection from rank %d", cfg.Rank, p.rank))
		}
		p.conn.SetDeadline(time.Time{})
		p.conn.SetNoDelay(true)
		p.queues = make(map[int]chan frame)
		p.gone = make(chan struct{})
		p.sendQ = make(chan outMsg, sendQueueCap)
		p.wcond = sync.NewCond(&p.wmu)
		t.peers[p.rank] = p
	}
	return nil
}

// Rank returns this endpoint's id in [0, Size).
func (t *TCPTransport) Rank() int { return t.rank }

// Size returns the world size.
func (t *TCPTransport) Size() int { return t.world }

func (t *TCPTransport) peer(r int) *tcpPeer {
	if r < 0 || r >= t.world || r == t.rank {
		panic(fmt.Sprintf("comm: rank %d: no connection to rank %d", t.rank, r))
	}
	return t.peers[r]
}

// failure returns the panic value for the recorded transport failure.
func (t *TCPTransport) failure() *TransportError {
	return &TransportError{Rank: t.rank, Err: t.failErr}
}

// fail records the first failure, wakes every blocked operation — including
// senders parked on a writer's completion cond — and tears down all
// connections so peers observe the failure too.
func (t *TCPTransport) fail(err error) {
	t.failOn.Do(func() {
		t.failErr = err
		close(t.failCh)
		t.nreg.flush()
		for _, p := range t.peers {
			if p != nil {
				p.conn.Close()
				if p.wcond != nil {
					p.wmu.Lock()
					p.wcond.Broadcast()
					p.wmu.Unlock()
				}
			}
		}
	})
}

// Err reports the failure that brought the transport down, or nil.
func (t *TCPTransport) Err() error {
	select {
	case <-t.failCh:
		return t.failErr
	default:
		return nil
	}
}

// Abort tears the transport down without the graceful goodbye: connections
// are reset, so every peer observes a connection error promptly. Used when
// an epoch fails mid-protocol (the surviving ranks must not be left blocked
// on messages that will never come) and by fault-injection tests to emulate
// a killed rank.
func (t *TCPTransport) Abort() {
	t.fail(fmt.Errorf("transport aborted"))
}

// readFramePooled reads one frame, drawing the payload buffer from the
// transport's receive pool; the consumer returns it after decoding.
func (t *TCPTransport) readFramePooled(r io.Reader) (frame, error) {
	var h [frameHeaderSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return frame{}, err
	}
	tag, dtype, nelems, err := parseFrameHeader(h[:])
	if err != nil {
		return frame{}, err
	}
	payload := t.recvBufs.get(4 * nelems)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		t.recvBufs.put(payload)
		return frame{}, err
	}
	return frame{tag: tag, dtype: dtype, payload: payload}, nil
}

// readLoop demultiplexes one peer connection into per-tag queues. With the
// wedged-peer detector armed (hbTimeout > 0) every frame read carries a
// read deadline: a peer that stays connected but silent — no data, no
// heartbeats — for hbTimeout is declared dead with a pointed error, the
// failure a connection reset can never report.
func (t *TCPTransport) readLoop(p *tcpPeer) {
	defer t.readers.Done()
	for {
		if t.hbTimeout > 0 {
			p.conn.SetReadDeadline(time.Now().Add(t.hbTimeout))
		}
		fr, err := t.readFramePooled(p.br)
		if err != nil {
			if t.closed.Load() {
				return // local Close is tearing the connection down
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.fail(fmt.Errorf("peer %d is wedged: no frames or heartbeats for %v (process alive but stuck, or network partitioned)",
					p.rank, t.hbTimeout))
				return
			}
			t.fail(fmt.Errorf("peer %d is gone: %v (process died or connection lost mid-epoch)", p.rank, err))
			return
		}
		if fr.dtype == dtypeCtrl && fr.tag == tagHeartbeat {
			t.recvBufs.put(fr.payload) // liveness only; the deadline reset above is the point
			continue
		}
		if fr.dtype == dtypeCtrl && fr.tag == tagBye {
			t.recvBufs.put(fr.payload)
			close(p.gone)
			t.nreg.flushSrc(p.rank)
			return
		}
		if fr.dtype == dtypeF32 {
			// Stamp before enqueue: a notified consumer's dequeue below can
			// block only until this push lands (and the consumer is what
			// drains a backpressured queue).
			t.nreg.arrived(p.rank, fr.tag)
		}
		q := p.queue(fr.tag, t.queueCap)
		select {
		case q <- fr:
		default:
			// Queue full: block — backpressuring the connection, the same
			// never-drop semantics as the channel backend — but stay
			// responsive to transport failure and to a local Close (which
			// abandons undrained queues; nothing will ever Recv them).
			select {
			case q <- fr:
			case <-t.failCh:
				return
			case <-t.closeCh:
				return
			}
		}
	}
}

func (p *tcpPeer) queue(tag, capacity int) chan frame {
	p.qmu.Lock()
	q := p.queues[tag]
	if q == nil {
		q = make(chan frame, capacity)
		p.queues[tag] = q
	}
	p.qmu.Unlock()
	return q
}

// isend serializes one frame into a pooled buffer and enqueues it to the
// peer's writer goroutine, returning a completion handle. The payload is
// fully serialized before isend returns, so the caller's data slice is free
// immediately; the socket write happens off the caller's critical path.
// payloadBytes < 0 marks control traffic excluded from accounting.
func (t *TCPTransport) isend(dst int, payloadBytes int, encode func([]byte) ([]byte, error)) PendingSend {
	select {
	case <-t.failCh:
		panic(t.failure())
	default:
	}
	p := t.peer(dst)
	hint := frameHeaderSize
	if payloadBytes > 0 {
		hint += payloadBytes
	}
	buf, err := encode(t.wireBufs.get(hint)[:0])
	if err != nil {
		t.fail(fmt.Errorf("send to peer %d: %w", dst, err))
		panic(t.failure())
	}
	p.enqSeq++
	msg := outMsg{buf: buf, seq: p.enqSeq}
	select {
	case p.sendQ <- msg:
	default:
		select {
		case p.sendQ <- msg: // backpressure: block, never drop
		case <-t.failCh:
			panic(t.failure())
		}
	}
	if payloadBytes >= 0 {
		t.bytesSent.Add(int64(payloadBytes))
		t.msgsSent.Add(1)
	}
	return PendingSend{t: t, p: p, seq: msg.seq}
}

// writeLoop drains one peer's send queue onto the socket, advancing
// writtenSeq and waking waiters after every successful write.
func (t *TCPTransport) writeLoop(p *tcpPeer) {
	defer t.writers.Done()
	for {
		var msg outMsg
		var ok bool
		select {
		case msg, ok = <-p.sendQ:
			if !ok {
				return
			}
		case <-t.failCh:
			return
		}
		_, err := p.conn.Write(msg.buf)
		if err == nil {
			t.wireSent.Add(int64(len(msg.buf)))
		}
		if err != nil {
			// Close drains the queues (writers.Wait) before touching the
			// connections, so a write error always means the peer side went
			// away — record it, which also wakes every parked waiter.
			t.fail(fmt.Errorf("send to peer %d: %w", p.rank, err))
			return
		}
		t.wireBufs.put(msg.buf)
		if msg.seq == 0 {
			continue // untracked control frame (heartbeat): no waiter to wake
		}
		p.wmu.Lock()
		p.writtenSeq = msg.seq
		p.wcond.Broadcast()
		p.wmu.Unlock()
	}
}

// waitWritten blocks until the peer's writer has put seq on the socket,
// panicking with the transport failure if it goes down first.
func (t *TCPTransport) waitWritten(p *tcpPeer, seq uint64) {
	p.wmu.Lock()
	for p.writtenSeq < seq {
		if t.Err() != nil {
			p.wmu.Unlock()
			panic(t.failure())
		}
		p.wcond.Wait()
	}
	p.wmu.Unlock()
}

func checkAppTag(tag int) {
	if tag < 0 || tag >= tagReservedBase {
		panic(fmt.Sprintf("comm: application tag %d outside [0,%d)", tag, tagReservedBase))
	}
}

// SendF32 sends a float32 payload to dst with a tag, blocking until the
// frame is on the socket. Unlike the channel backend the payload is
// serialized before Send returns, so the caller's buffer is free immediately
// — but callers must still follow the stricter channel-backend ownership
// rule to stay backend-portable.
func (t *TCPTransport) SendF32(dst, tag int, data []float32) {
	t.ISendF32(dst, tag, data).Wait()
}

// ISendF32 initiates a nonblocking send: the payload is serialized into a
// pooled buffer (freeing the caller's slice) and handed to the peer's writer
// goroutine, which performs the socket write concurrently with whatever the
// caller does next. The returned handle's Wait blocks until the write
// completes; the epoch protocol never waits — message delivery is confirmed
// by the protocol being fully matched.
func (t *TCPTransport) ISendF32(dst, tag int, data []float32) PendingSend {
	checkAppTag(tag)
	return t.isend(dst, 4*len(data), func(b []byte) ([]byte, error) {
		return appendFrameF32(b, tag, data)
	})
}

// IRecvF32 posts a nonblocking receive; the demux goroutine drains the
// socket in the background, so the frame makes progress while the caller
// computes and Wait only dequeues it.
func (t *TCPTransport) IRecvF32(src, tag int) PendingRecvF32 {
	return PendingRecvF32{t: t, src: src, tag: tag}
}

// IRecvF32Notify posts a nonblocking receive with a completion
// notification; see Transport.IRecvF32Notify. The demux goroutines stamp
// the ledger as they route f32 frames, so the token fires when the frame is
// (about to be) queued for consumption.
func (t *TCPTransport) IRecvF32Notify(src, tag int, notify chan<- int, token int) PendingRecvF32 {
	checkAppTag(tag)
	t.peer(src) // validate src early, like recv would
	t.nreg.register(src, tag, notify, token)
	return PendingRecvF32{t: t, src: src, tag: tag}
}

// RecycleF32 returns a payload obtained from RecvF32 to the decode pool.
func (t *TCPTransport) RecycleF32(data []float32) {
	t.f32Bufs.put(data)
}

// SendI32 sends an int32 payload to dst with a tag, blocking until the frame
// is on the socket.
func (t *TCPTransport) SendI32(dst, tag int, data []int32) {
	checkAppTag(tag)
	t.isend(dst, 4*len(data), func(b []byte) ([]byte, error) {
		return appendFrameI32(b, tag, data)
	}).Wait()
}

// recv blocks until a frame with the given tag arrives from src, the peer
// says goodbye, or the transport fails (the latter two panic with a
// descriptive error instead of deadlocking).
func (t *TCPTransport) recv(src, tag int, want byte) frame {
	p := t.peer(src)
	q := p.queue(tag, t.queueCap)
	var fr frame
	select {
	case fr = <-q:
	default:
		select {
		case fr = <-q:
		case <-t.failCh:
			// A frame may have been queued between the poll above and the
			// failure; prefer delivering it.
			select {
			case fr = <-q:
			default:
				panic(t.failure())
			}
		case <-p.gone:
			select {
			case fr = <-q:
			default:
				panic(&TransportError{Rank: t.rank, Err: fmt.Errorf(
					"peer %d closed its transport while rank %d still expected tag %d", src, t.rank, tag)})
			}
		}
	}
	if fr.dtype != want {
		panic(&TransportError{Rank: t.rank, Err: fmt.Errorf(
			"protocol bug: expected dtype %d on tag %d from peer %d, got %d", want, tag, src, fr.dtype)})
	}
	return fr
}

// RecvF32 receives the next float32 message from src with the given tag.
// The returned slice comes from the transport's decode pool; hand it back
// with RecycleF32 once consumed to keep steady-state epochs allocation-free.
func (t *TCPTransport) RecvF32(src, tag int) []float32 {
	checkAppTag(tag)
	fr := t.recv(src, tag, dtypeF32)
	out := t.f32Bufs.get(len(fr.payload) / 4)
	decodeF32Into(out, fr.payload)
	t.recvBufs.put(fr.payload)
	return out
}

// RecvI32 receives the next int32 message from src with the given tag.
func (t *TCPTransport) RecvI32(src, tag int) []int32 {
	checkAppTag(tag)
	fr := t.recv(src, tag, dtypeI32)
	out := payloadI32(fr.payload)
	t.recvBufs.put(fr.payload)
	return out
}

// Barrier blocks until every rank has entered it. Implemented as gather-to-
// rank-0 plus release fan-out over control frames, which are excluded from
// byte accounting (the channel backend's barrier moves no bytes either).
func (t *TCPTransport) Barrier() {
	if t.world == 1 {
		return
	}
	if t.rank == 0 {
		for r := 1; r < t.world; r++ {
			t.recvBufs.put(t.recv(r, tagBarrierEnter, dtypeCtrl).payload)
		}
		for r := 1; r < t.world; r++ {
			t.sendCtrl(r, tagBarrierLeave)
		}
	} else {
		t.sendCtrl(0, tagBarrierEnter)
		t.recvBufs.put(t.recv(0, tagBarrierLeave, dtypeCtrl).payload)
	}
}

func (t *TCPTransport) sendCtrl(dst, tag int) {
	t.isend(dst, -1, func(b []byte) ([]byte, error) {
		return appendFrameBytes(b, tag, dtypeCtrl, nil)
	}).Wait()
}

// BytesSent returns the payload bytes this rank has sent since the last
// ResetCounters — headers and control traffic excluded, so the figure is
// comparable across backends and feeds the cost model unchanged.
func (t *TCPTransport) BytesSent() int64 { return t.bytesSent.Load() }

// MessagesSent returns the number of payload messages sent.
func (t *TCPTransport) MessagesSent() int64 { return t.msgsSent.Load() }

// WireBytesSent returns the total bytes written to sockets, including the
// 12-byte frame headers and control frames; WireBytesSent−BytesSent is the
// transport's framing overhead.
func (t *TCPTransport) WireBytesSent() int64 { return t.wireSent.Load() }

// ResetCounters zeroes the payload byte and message counters (wire bytes
// included).
func (t *TCPTransport) ResetCounters() {
	t.bytesSent.Store(0)
	t.msgsSent.Store(0)
	t.wireSent.Store(0)
}

// Close shuts the endpoint down gracefully: a goodbye frame tells each peer
// that no more data is coming (so their pending receives fail with a
// "closed" error rather than a connection error), the writer goroutines are
// drained and stopped, then connections are closed and the demux goroutines
// reaped. Close after a failure returns the recorded error.
func (t *TCPTransport) Close() error {
	if t.closed.Swap(true) {
		t.stopHeartbeats()
		t.readers.Wait()
		t.writers.Wait()
		return t.Err()
	}
	// The heartbeat sender must be provably stopped before the send queues
	// are closed out from under it (send on closed channel would panic).
	t.stopHeartbeats()
	if t.Err() == nil {
		for r := range t.peers {
			if t.peers[r] == nil {
				continue
			}
			func() {
				defer func() { recover() }() // peer may already be gone; goodbye is best-effort
				t.sendCtrl(r, tagBye)
			}()
		}
	}
	// The goodbyes were waited for, so the send queues are drained; closing
	// them stops the writers before the connections go away. closeCh frees
	// any demux goroutine parked on a full receive queue.
	close(t.closeCh)
	for _, p := range t.peers {
		if p != nil {
			close(p.sendQ)
		}
	}
	t.writers.Wait()
	for _, p := range t.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	t.readers.Wait()
	return t.Err()
}
