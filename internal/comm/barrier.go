package comm

import "sync"

// reusableBarrier is a generation-counted barrier usable repeatedly. An
// aborted barrier (transport failure) releases every current and future
// waiter with wait() == true so no rank is left blocked behind a dead peer.
type reusableBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     int
	aborted bool
}

func newBarrier(n int) *reusableBarrier {
	b := &reusableBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n participants arrive or the barrier is aborted;
// it reports whether the wake-up was an abort.
func (b *reusableBarrier) wait() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return true
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return false
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	return gen == b.gen && b.aborted
}

// abort releases every waiter and makes all future waits fail immediately.
func (b *reusableBarrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
