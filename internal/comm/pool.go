package comm

import (
	"math/bits"
	"sync"
)

// Workspace-style free lists for the TCP transport's steady-state buffers
// (see tensor.Workspace for the pattern): buckets by power-of-two capacity,
// so the repeating frame sizes of a training epoch hit the free list every
// time after one warm-up epoch. Three pools exist per transport:
//
//   - wireBufs ([]byte): serialized outgoing frames; filled by ISend/Send,
//     returned by the per-peer writer goroutine after the socket write.
//   - recvBufs ([]byte): incoming frame payloads; drawn by the demux
//     goroutines in readLoop, returned by RecvF32/RecvI32/Barrier after the
//     payload is decoded.
//   - f32Bufs ([]float32): decoded receive payloads; returned by the
//     consumer via RecycleF32 once the data has been used.
//
// Unlike tensor.Workspace these pools are mutex-guarded: the demux goroutine
// of every peer and the rank goroutine share them. Buffers lost at teardown
// (frames never consumed after a failure) are simply garbage collected.

// poolGetClass returns the bucket whose buffers have capacity 1<<c ≥ n.
func poolGetClass(n int) int {
	if n <= 0 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// poolPutClass returns the bucket a buffer of the given capacity may serve:
// the largest c with 1<<c <= capacity. Returns -1 for capacity 0.
func poolPutClass(capacity int) int {
	return bits.Len(uint(capacity)) - 1
}

// bufPool is a bucketed free list of element buffers.
type bufPool[E any] struct {
	mu   sync.Mutex
	free [33][][]E
}

// get returns a length-n buffer with undefined contents.
func (p *bufPool[E]) get(n int) []E {
	c := poolGetClass(n)
	p.mu.Lock()
	if bucket := p.free[c]; len(bucket) > 0 {
		buf := bucket[len(bucket)-1]
		p.free[c] = bucket[:len(bucket)-1]
		p.mu.Unlock()
		return buf[:n]
	}
	p.mu.Unlock()
	return make([]E, n, 1<<c)
}

// put returns buf to the free lists; the caller must not use it afterwards.
func (p *bufPool[E]) put(buf []E) {
	c := poolPutClass(cap(buf))
	if c < 0 {
		return
	}
	p.mu.Lock()
	p.free[c] = append(p.free[c], buf[:cap(buf)])
	p.mu.Unlock()
}
