package comm

import (
	"sync/atomic"
	"testing"
)

// TestAllReduceRingBytesPerRank pins the ring collective's traffic shape:
// every rank sends 2(m−1)·(n/m) floats — O(n) independent of m — where the
// old reduce-to-root implementation made rank 0 send (m−1)·n floats and
// receive as much, an O(m·n) hotspot.
func TestAllReduceRingBytesPerRank(t *testing.T) {
	const n = 1 << 12
	for _, m := range []int{2, 4, 8} {
		c := New(m, 0)
		c.Run(func(w *Worker) {
			data := make([]float32, n)
			for i := range data {
				data[i] = float32(w.Rank())
			}
			w.AllReduceSum(data, 50)
		})
		perChunk := n / m
		wantBytes := int64(4 * 2 * (m - 1) * perChunk)
		rootBytes := int64(4 * (m - 1) * n) // what reduce-to-root sends from rank 0
		for r := 0; r < m; r++ {
			got := c.BytesSent(r)
			if got != wantBytes {
				t.Errorf("m=%d rank %d sent %d bytes, want %d", m, r, got, wantBytes)
			}
			if m > 2 && got >= rootBytes {
				t.Errorf("m=%d rank %d sent %d bytes, not below root bottleneck %d", m, r, got, rootBytes)
			}
		}
	}
}

// TestAllReduceRingBitIdentical checks every rank observes the same bits
// even for sums whose value depends on accumulation order in float32.
func TestAllReduceRingBitIdentical(t *testing.T) {
	const m, n = 5, 97 // odd length exercises uneven chunks
	results := make([][]float32, m)
	c := New(m, 0)
	c.Run(func(w *Worker) {
		data := make([]float32, n)
		for i := range data {
			// Values with rounding sensitivity: tiny and huge magnitudes mixed.
			data[i] = float32(1.0/3.0) * float32(w.Rank()+1) * float32(i%7+1) * 1e-3
		}
		w.AllReduceSum(data, 9)
		results[w.Rank()] = data
	})
	for r := 1; r < m; r++ {
		for i := range results[0] {
			if results[0][i] != results[r][i] {
				t.Fatalf("elem %d differs between rank 0 (%v) and rank %d (%v)",
					i, results[0][i], r, results[r][i])
			}
		}
	}
}

// TestAllReduceRingUnevenAndTiny covers n not divisible by m and n < m
// (empty chunks on some ranks).
func TestAllReduceRingUnevenAndTiny(t *testing.T) {
	for _, tc := range []struct{ m, n int }{{3, 7}, {7, 3}, {4, 1}, {5, 5}} {
		c := New(tc.m, 0)
		c.Run(func(w *Worker) {
			data := make([]float32, tc.n)
			for i := range data {
				data[i] = float32(w.Rank()*100 + i)
			}
			w.AllReduceSum(data, 0)
			for i := range data {
				want := float32(tc.m*i + 100*tc.m*(tc.m-1)/2)
				if data[i] != want {
					t.Errorf("m=%d n=%d rank %d elem %d: got %v want %v",
						tc.m, tc.n, w.Rank(), i, data[i], want)
				}
			}
		})
	}
}

// TestAllReduceRingBackToBack runs many collectives in a row on the same
// cluster with no interleaved barrier, exercising the scratch-buffer parity
// scheme that lets consecutive calls reuse send buffers safely.
func TestAllReduceRingBackToBack(t *testing.T) {
	const m, n, rounds = 4, 1024, 50
	c := New(m, 0)
	var bad atomic.Int32
	c.Run(func(w *Worker) {
		data := make([]float32, n)
		for round := 0; round < rounds; round++ {
			for i := range data {
				data[i] = float32(w.Rank() + round)
			}
			w.AllReduceSum(data, round*2)
			want := float32(m*round + m*(m-1)/2)
			for i := range data {
				if data[i] != want {
					bad.Add(1)
					return
				}
			}
		}
	})
	if bad.Load() > 0 {
		t.Fatalf("%d workers saw corrupted allreduce results", bad.Load())
	}
}
