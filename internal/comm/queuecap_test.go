package comm

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestPairQueueOverflowBlocksNotDrops pins the documented queueCap contract
// of New: a send to a full (src,dst) queue blocks the sender — backpressure
// — and no message is ever dropped or reordered once the receiver drains.
func TestPairQueueOverflowBlocksNotDrops(t *testing.T) {
	const capacity = 4
	const total = capacity + 3
	c := New(2, capacity)
	var completed atomic.Int32
	c.Run(func(w *Worker) {
		if w.Rank() == 0 {
			for i := 0; i < total; i++ {
				w.SendF32(1, i, []float32{float32(i)})
				completed.Add(1)
			}
			return
		}
		// Wait until the sender has filled the queue, then verify it is
		// stuck there: exactly capacity sends completed, the next blocked.
		deadline := time.Now().Add(5 * time.Second)
		for completed.Load() < capacity && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(50 * time.Millisecond) // give a buggy non-blocking send time to race past
		if got := completed.Load(); got != capacity {
			t.Errorf("sender completed %d sends against a queue of capacity %d", got, capacity)
		}
		for i := 0; i < total; i++ {
			if got := w.RecvF32(0, i); got[0] != float32(i) {
				t.Errorf("message %d: got %v (dropped or reordered)", i, got[0])
			}
		}
	})
	if got := c.MessagesSent(0); got != total {
		t.Fatalf("accounting says %d messages, want %d", got, total)
	}
}

// TestDefaultQueueCapCoversTrainingBound documents the default's headroom:
// the deepest paper configuration (L=6 layers, m=32 partitions) needs at
// most 2·(2L+2(m−1)+1) = 150 outstanding messages per pair — see New.
func TestDefaultQueueCapCoversTrainingBound(t *testing.T) {
	const maxLayers, maxParts = 6, 32
	bound := 2 * (2*maxLayers + 2*(maxParts-1) + 1)
	if defaultQueueCap < bound {
		t.Fatalf("default queue cap %d below the documented training bound %d", defaultQueueCap, bound)
	}
}
