package comm

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// loopbackTransportsCfg is loopbackTransports with a per-rank config hook,
// used by heartbeat tests that need asymmetric settings.
func loopbackTransportsCfg(t testing.TB, k int, mut func(r int, cfg *TCPConfig)) []*TCPTransport {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ts := make([]*TCPTransport, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := TCPConfig{Rank: r, World: k, Rendezvous: addr, Timeout: 10 * time.Second}
			if r == 0 {
				cfg.RendezvousListener = ln
			}
			if mut != nil {
				mut(r, &cfg)
			}
			ts[r], errs[r] = DialTCP(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tp := range ts {
			tp.Close()
		}
	})
	return ts
}

// TestHeartbeatDetectsWedgedPeer: rank 0 arms the wedged-peer detector but
// rank 1 never emits heartbeats (interval 0 — emulating a process that is
// alive at the TCP level yet stuck). Rank 0 must declare it dead within the
// timeout instead of blocking forever on a silent link.
func TestHeartbeatDetectsWedgedPeer(t *testing.T) {
	ts := loopbackTransportsCfg(t, 2, func(r int, cfg *TCPConfig) {
		if r == 0 {
			cfg.HeartbeatInterval = 20 * time.Millisecond
			cfg.HeartbeatTimeout = 150 * time.Millisecond
		}
	})
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		ts[0].RecvF32(1, 1) // rank 1 will never send anything
	}()
	select {
	case p := <-done:
		te, ok := p.(*TransportError)
		if !ok {
			t.Fatalf("panic value %T, want *TransportError", p)
		}
		if !strings.Contains(te.Error(), "wedged") {
			t.Fatalf("expected wedged-peer error, got %v", te)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wedged peer was never detected")
	}
}

// TestHeartbeatKeepsIdleLinkAlive: with both sides heartbeating, an idle
// period far longer than the timeout must NOT trip the detector — the
// heartbeats are exactly what keeps a healthy-but-quiet link alive — and
// data still flows afterwards.
func TestHeartbeatKeepsIdleLinkAlive(t *testing.T) {
	ts := loopbackTransportsCfg(t, 2, func(r int, cfg *TCPConfig) {
		cfg.HeartbeatInterval = 15 * time.Millisecond
		cfg.HeartbeatTimeout = 100 * time.Millisecond
	})
	time.Sleep(400 * time.Millisecond) // several timeouts' worth of idleness
	for _, tp := range ts {
		if err := tp.Err(); err != nil {
			t.Fatalf("healthy idle link failed: %v", err)
		}
	}
	ts[0].SendF32(1, 1, []float32{42})
	if got := ts[1].RecvF32(0, 1); got[0] != 42 {
		t.Fatalf("post-idle payload corrupted: %v", got)
	}
	for _, tp := range ts {
		if err := tp.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHeartbeatFramesInvisibleToCounters: heartbeats are plumbing, not
// messages — payload counters must not move on an idle heartbeating link.
func TestHeartbeatFramesInvisibleToCounters(t *testing.T) {
	ts := loopbackTransportsCfg(t, 2, func(r int, cfg *TCPConfig) {
		cfg.HeartbeatInterval = 10 * time.Millisecond
	})
	time.Sleep(100 * time.Millisecond)
	for r, tp := range ts {
		if n := tp.MessagesSent(); n != 0 {
			t.Fatalf("rank %d: %d payload messages counted on an idle link", r, n)
		}
		if n := tp.BytesSent(); n != 0 {
			t.Fatalf("rank %d: %d payload bytes counted on an idle link", r, n)
		}
	}
}

// TestDialRetryConnectsToLateServer: the rendezvous dial must survive rank
// 0 coming up hundreds of milliseconds late (process scheduling skew, a
// recovering cohort) by retrying with backoff instead of failing on the
// first refused connection.
func TestDialRetryConnectsToLateServer(t *testing.T) {
	// Reserve a port, release it, and bring the real listener up late.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var ts [2]*TCPTransport
	var errs [2]error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // rank 1 dials immediately — into refused connections at first
		defer wg.Done()
		ts[1], errs[1] = DialTCP(TCPConfig{Rank: 1, World: 2, Rendezvous: addr, Timeout: 10 * time.Second})
	}()
	go func() { // rank 0 shows up 300ms late
		defer wg.Done()
		time.Sleep(300 * time.Millisecond)
		lateLn, err := net.Listen("tcp", addr)
		if err != nil {
			errs[0] = err
			return
		}
		ts[0], errs[0] = DialTCP(TCPConfig{
			Rank: 0, World: 2, Rendezvous: addr, RendezvousListener: lateLn, Timeout: 10 * time.Second,
		})
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer ts[0].Close()
	defer ts[1].Close()
	ts[1].SendF32(0, 1, []float32{7})
	if got := ts[0].RecvF32(1, 1); got[0] != 7 {
		t.Fatalf("payload corrupted: %v", got)
	}
}

// TestRendezvousRejectsBadRegistrations: a misconfigured client (rank out
// of range, malformed hello) gets a pointed ERR reply and its connection
// closed, and — critically — the correctly configured cohort still
// bootstraps; one bad process must not wedge the whole round.
func TestRendezvousRejectsBadRegistrations(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	var ts [2]*TCPTransport
	var errs [2]error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ts[0], errs[0] = DialTCP(TCPConfig{
			Rank: 0, World: 2, Rendezvous: addr, RendezvousListener: ln, Timeout: 10 * time.Second,
		})
	}()
	go func() {
		defer wg.Done()
		// Two bad clients first; the server must reject both and keep serving.
		for _, hello := range []string{"HELLO 7 1.2.3.4:1\n", "GARBAGE\n"} {
			conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				errs[1] = err
				return
			}
			fmt.Fprint(conn, hello)
			line, err := bufio.NewReader(conn).ReadString('\n')
			conn.Close()
			if err != nil {
				errs[1] = fmt.Errorf("bad client got no reply: %w", err)
				return
			}
			if !strings.HasPrefix(line, "ERR ") {
				errs[1] = fmt.Errorf("bad hello %q got %q, want ERR", hello, line)
				return
			}
		}
		ts[1], errs[1] = DialTCP(TCPConfig{Rank: 1, World: 2, Rendezvous: addr, Timeout: 10 * time.Second})
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer ts[0].Close()
	defer ts[1].Close()
	ts[0].SendF32(1, 1, []float32{1})
	if got := ts[1].RecvF32(0, 1); got[0] != 1 {
		t.Fatalf("payload corrupted: %v", got)
	}
}

// TestRendezvousOutOfRangeErrorIsPointed: the rejected client's own DialTCP
// surfaces the server's explanation, not a bare EOF.
func TestRendezvousOutOfRangeErrorIsPointed(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	serverDone := make(chan struct{})
	go func() {
		defer close(serverDone)
		// World=3 server: expects ranks 1,2; the test sends it a rank-5 client
		// (claiming world 3 on its own side would be rejected locally, so the
		// client lies about world size — exactly the misconfiguration case).
		DialTCP(TCPConfig{Rank: 0, World: 3, Rendezvous: addr, RendezvousListener: ln, Timeout: 3 * time.Second})
	}()
	_, err = DialTCP(TCPConfig{Rank: 5, World: 9, Rendezvous: addr, Timeout: 5 * time.Second})
	if err == nil || !strings.Contains(err.Error(), "rejected registration") || !strings.Contains(err.Error(), "outside [1,3)") {
		t.Fatalf("expected pointed rejection, got %v", err)
	}
	<-serverDone // server times out (cohort never completes) — just don't leak it
}

// TestRendezvousDuplicateRegistrationLatestWins: a rank that re-registers
// while the round is still open (it timed out and redialed, or is rejoining
// across generations) replaces its stale registration; the stale connection
// is dropped and bootstrap completes with the fresh address. World 3 keeps
// the round open: stale rank-1 hello, fresh rank-1 hello, then rank 2
// completes the cohort.
func TestRendezvousDuplicateRegistrationLatestWins(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	var ts [3]*TCPTransport
	var errs [3]error
	staleClosed := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		ts[0], errs[0] = DialTCP(TCPConfig{
			Rank: 0, World: 3, Rendezvous: addr, RendezvousListener: ln, Timeout: 10 * time.Second,
		})
	}()
	go func() {
		defer wg.Done()
		// Stale registration for rank 1 pointing at a dead address.
		stale, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			errs[1] = err
			return
		}
		fmt.Fprint(stale, "HELLO 1 127.0.0.1:1\n")
		go func() { // the server must close the stale conn when rank 1 re-registers
			_, err := bufio.NewReader(stale).ReadString('\n')
			staleClosed <- err
			stale.Close()
		}()
		time.Sleep(100 * time.Millisecond) // let the stale hello land first
		ts[1], errs[1] = DialTCP(TCPConfig{Rank: 1, World: 3, Rendezvous: addr, Timeout: 10 * time.Second})
	}()
	go func() {
		defer wg.Done()
		// Rank 2 registers last so the round stays open for the duplicate.
		time.Sleep(300 * time.Millisecond)
		ts[2], errs[2] = DialTCP(TCPConfig{Rank: 2, World: 3, Rendezvous: addr, Timeout: 10 * time.Second})
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer func() {
		for _, tp := range ts {
			tp.Close()
		}
	}()
	select {
	case err := <-staleClosed:
		if err == nil {
			t.Fatal("stale registration received the address table; the fresh one should have replaced it")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stale registration was never dropped")
	}
	ts[0].SendF32(1, 1, []float32{9})
	if got := ts[1].RecvF32(0, 1); got[0] != 9 {
		t.Fatalf("payload corrupted after re-registration: %v", got)
	}
}

// TestDialTCPMeshFromAgreedTable: the elastic re-admission entry point —
// given pre-bound listeners and an agreed address table, every rank meshes
// without any rendezvous and the fabric behaves identically.
func TestDialTCPMeshFromAgreedTable(t *testing.T) {
	const k = 3
	lns := make([]net.Listener, k)
	addrs := make([]string, k)
	for r := 0; r < k; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r], addrs[r] = ln, ln.Addr().String()
	}
	ts := make([]*TCPTransport, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ts[r], errs[r] = DialTCPMesh(
				TCPConfig{Rank: r, World: k, Timeout: 10 * time.Second}, lns[r], addrs)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tp := range ts {
			tp.Close()
		}
	})
	generic := make([]Transport, k)
	for i, tp := range ts {
		generic[i] = tp
	}
	NewGroup(generic).Run(func(w *Worker) {
		data := []float32{float32(w.Rank() + 1)}
		w.AllReduceSum(data, 40)
		if data[0] != 6 { // 1+2+3
			t.Errorf("rank %d: allreduce over mesh-dialed fabric = %v", w.Rank(), data[0])
		}
		w.Barrier()
	})
}

// TestDialTCPMeshRejectsBadTable: a table whose size disagrees with the
// world must be rejected up front.
func TestDialTCPMeshRejectsBadTable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := DialTCPMesh(TCPConfig{Rank: 0, World: 3}, ln, []string{"a", "b"}); err == nil {
		t.Fatal("short address table must be rejected")
	}
}

// TestAbortCloseConcurrent: the supervisor tears transports down from a
// different goroutine than the trainer that hit the failure; Abort and
// Close must be idempotent and safe to race on both backends.
func TestAbortCloseConcurrent(t *testing.T) {
	t.Run("tcp", func(t *testing.T) {
		ts := loopbackTransports(t, 2)
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(2)
			go func() { defer wg.Done(); ts[0].Abort() }()
			go func() { defer wg.Done(); ts[0].Close() }()
		}
		wg.Wait()
		ts[1].Close()
	})
	t.Run("chan", func(t *testing.T) {
		c := New(2, 0)
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(2)
			tp := c.Worker(0).Transport()
			go func() { defer wg.Done(); tp.Abort() }()
			go func() { defer wg.Done(); tp.Close() }()
		}
		wg.Wait()
	})
}
