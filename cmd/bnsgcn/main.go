// Command bnsgcn trains a GCN with BNS-GCN partition-parallel training on a
// generated dataset and reports per-epoch statistics and final test score.
//
// By default the k partitions run as goroutines in one process over the
// channel transport. With -rendezvous the same protocol runs across OS
// processes over the TCP transport — one process per partition — which is
// bit-identical to the in-process run (the cross-backend tests in
// internal/core pin this):
//
//	bnsgcn -dataset reddit -k 8 -p 0.1 -epochs 100
//	bnsgcn -dataset yelp -k 10 -p 0.01 -arch sage -layers 4 -hidden 32
//
// The pipelined epoch schedule is the default: halo exchange overlaps
// inner-node compute and each peer's boundary rows complete in arrival
// order (identical results, lower exposed comm time). -drain=rank keeps the
// pipelining but drains peers in ascending rank order; -overlap=false falls
// back to the fully serialized baseline:
//
//	bnsgcn -dataset reddit -k 8 -p 0.1 -overlap=false
//
//	# multi-process on one machine: spawn 4 workers over loopback
//	bnsgcn -dataset reddit -p 0.1 -world 4 -rendezvous 127.0.0.1:29500 -spawn
//
//	# or launch each rank yourself (possibly on different machines):
//	bnsgcn -dataset reddit -p 0.1 -world 4 -rendezvous host0:29500 -rank 0 &
//	bnsgcn -dataset reddit -p 0.1 -world 4 -rendezvous host0:29500 -rank 1 &
//	...
//
// Every rank regenerates the dataset and partitioning from the shared seed,
// so no input files need distributing; ranks only exchange boundary
// features, gradients, and the weight AllReduce.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/partition"
)

// tagLoss is the AllReduce tag the CLI uses to aggregate the display loss
// across ranks; it sits far above the training protocol's tag range.
const tagLoss = 5000

func main() {
	var (
		dsName  = flag.String("dataset", "reddit", "dataset: reddit, products, yelp")
		k       = flag.Int("k", 4, "number of partitions (simulated GPUs); ignored when -world is set")
		p       = flag.Float64("p", 0.1, "boundary node sampling rate in [0,1]")
		method  = flag.String("partitioner", "metis", "metis or random")
		arch    = flag.String("arch", "sage", "model: sage or gat")
		layers  = flag.Int("layers", 0, "model depth (0 = paper default for dataset)")
		hidden  = flag.Int("hidden", 32, "hidden units")
		epochs  = flag.Int("epochs", 100, "training epochs")
		lr      = flag.Float64("lr", 0, "learning rate (0 = paper default)")
		dropout = flag.Float64("dropout", -1, "dropout rate (-1 = paper default)")
		scale   = flag.Int("scale", 1, "dataset scale multiplier")
		seed    = flag.Uint64("seed", 1, "master seed")
		every   = flag.Int("eval-every", 10, "evaluate test score every N epochs (0 = end only)")
		overlap = flag.Bool("overlap", true, "pipelined epoch schedule: overlap halo communication with inner-node compute (bit-identical results; -overlap=false for the serialized baseline)")
		drain   = flag.String("drain", "arrival", "overlapped drain order: arrival (complete whichever peer's halo data lands first) or rank (ascending rank order)")

		rank  = flag.Int("rank", -1, "this process's rank in a multi-process run (requires -rendezvous)")
		world = flag.Int("world", 0, "ranks in a multi-process run = partition count (requires -rendezvous)")
		rdv   = flag.String("rendezvous", "", "host:port rank 0 serves during bootstrap; enables the TCP transport")
		spawn = flag.Bool("spawn", false, "launch -world local worker processes (one per partition) and wait")
	)
	flag.Parse()

	distributed := *rdv != ""
	if distributed {
		if *world < 1 {
			fatal(fmt.Errorf("-rendezvous requires -world >= 1, got %d", *world))
		}
		*k = *world // one partition per process
		if *spawn {
			os.Exit(spawnWorkers(*world))
		}
		if *rank < 0 || *rank >= *world {
			fatal(fmt.Errorf("-rank %d outside [0,%d); pass -spawn to launch all ranks", *rank, *world))
		}
	}

	var cfg datagen.Config
	var defLayers int
	var defLR, defDrop float64
	switch *dsName {
	case "reddit":
		cfg, defLayers, defLR, defDrop = datagen.RedditSim(*scale, *seed), 4, 0.01, 0.5
	case "products":
		cfg, defLayers, defLR, defDrop = datagen.ProductsSim(*scale, *seed), 3, 0.003, 0.3
	case "yelp":
		cfg, defLayers, defLR, defDrop = datagen.YelpSim(*scale, *seed), 4, 0.001, 0.1
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dsName))
	}
	if *layers == 0 {
		*layers = defLayers
	}
	if *lr == 0 {
		*lr = defLR
	}
	if *dropout < 0 {
		*dropout = defDrop
	}

	logf := func(format string, args ...any) { fmt.Printf(format, args...) }
	if distributed && *rank != 0 {
		logf = func(string, ...any) {} // only rank 0 narrates
	}

	logf("generating %s (scale %d)...\n", cfg.Name, *scale)
	ds, err := datagen.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	logf("graph: %d nodes, %d edges; %d classes\n", ds.G.N, ds.G.NumEdges(), ds.NumClasses)

	var pt partition.Partitioner
	switch *method {
	case "metis":
		pt = &partition.Metis{Seed: *seed}
	case "random":
		pt = &partition.Random{Seed: *seed}
	default:
		fatal(fmt.Errorf("unknown partitioner %q", *method))
	}
	parts, err := pt.Partition(ds.G, *k)
	if err != nil {
		fatal(err)
	}
	topo, err := core.BuildTopology(ds.G, parts, *k)
	if err != nil {
		fatal(err)
	}
	logf("partitioned with %s into %d parts; communication volume %d boundary nodes\n",
		pt.Name(), *k, topo.CommVolume())

	mc := core.ModelConfig{
		Arch: core.Arch(*arch), Layers: *layers, Hidden: *hidden,
		Dropout: float32(*dropout), LR: float32(*lr), Seed: *seed,
	}
	var sched core.Schedule
	switch *drain {
	case "arrival":
		sched = core.ScheduleOverlap
	case "rank":
		sched = core.ScheduleOverlapRank
	default:
		fatal(fmt.Errorf("unknown -drain %q (want arrival or rank)", *drain))
	}
	if !*overlap {
		sched = core.ScheduleSerialized
	}
	pcfg := core.ParallelConfig{Model: mc, P: *p, SampleSeed: *seed + 1, Schedule: sched}

	if distributed {
		logf("training %s (%d layers, %d hidden) for %d epochs at p=%.2g on %d processes over TCP\n\n",
			*arch, *layers, *hidden, *epochs, *p, *world)
		trainDistributed(ds, topo, pcfg, *rank, *world, *rdv, *epochs, *every)
		return
	}

	tr, err := core.NewParallelTrainer(ds, topo, pcfg)
	if err != nil {
		fatal(err)
	}
	logf("training %s (%d layers, %d hidden) for %d epochs at p=%.2g on %d workers\n\n",
		*arch, *layers, *hidden, *epochs, *p, *k)
	for e := 1; e <= *epochs; e++ {
		st := tr.TrainEpoch()
		if *every > 0 && e%*every == 0 {
			fmt.Printf("epoch %4d  loss %.4f  epoch time %8s  (sample %s, comm %s exposed %s, reduce %s)  test %.4f\n",
				e, st.Loss, st.TotalTime().Round(1e5), st.SampleTime.Round(1e5),
				st.CommTime.Round(1e5), st.ExposedCommTime.Round(1e5),
				st.ReduceTime.Round(1e5), tr.Evaluate(ds.TestMask))
		}
	}
	fmt.Printf("\nfinal: val %.4f  test %.4f\n", tr.Evaluate(ds.ValMask), tr.Evaluate(ds.TestMask))
}

// trainDistributed runs this process's single rank over the TCP transport.
func trainDistributed(ds *datagen.Dataset, topo *core.Topology, pcfg core.ParallelConfig,
	rank, world int, rdv string, epochs, every int) {
	rt, err := core.NewRankTrainer(ds, topo, pcfg, rank)
	if err != nil {
		fatal(err)
	}
	tp, err := comm.DialTCP(comm.TCPConfig{Rank: rank, World: world, Rendezvous: rdv})
	if err != nil {
		fatal(err)
	}
	w := comm.NewWorker(tp)
	loss := make([]float32, 1)
	for e := 1; e <= epochs; e++ {
		st, err := rt.TrainEpoch(w)
		if err != nil {
			fatal(err)
		}
		// Aggregate the scalar training loss for display; everything else
		// the trainer needs is already exchanged inside the epoch.
		loss[0] = float32(st.Loss)
		w.AllReduceSum(loss, tagLoss)
		// Only rank 0 evaluates: replicas are identical, and full-graph
		// inference on every rank would be wasted work.
		if rank == 0 && every > 0 && e%every == 0 {
			fmt.Printf("epoch %4d  loss %.4f  (rank %d: sample %s, comm %s exposed %s, reduce %s)  test %.4f\n",
				e, loss[0], rank, st.Sample.Round(1e5), st.Comm.Round(1e5), st.CommExposed.Round(1e5),
				st.Reduce.Round(1e5), rt.Evaluate(ds.TestMask))
		}
	}
	w.Barrier()
	if rank == 0 {
		fmt.Printf("\nfinal: val %.4f  test %.4f\n", rt.Evaluate(ds.ValMask), rt.Evaluate(ds.TestMask))
		fmt.Printf("rank %d sent %d payload bytes in %d messages (%d bytes on the wire)\n",
			rank, tp.BytesSent(), tp.MessagesSent(), tp.WireBytesSent())
	}
	if err := tp.Close(); err != nil {
		fatal(err)
	}
}

// spawnWorkers re-execs this binary once per rank with the same flags plus
// -rank, prefixes each child's output with its rank, and waits for all.
func spawnWorkers(world int) int {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	var base []string
	for _, a := range os.Args[1:] {
		s := strings.TrimLeft(a, "-")
		if s == "spawn" || strings.HasPrefix(s, "spawn=") || strings.HasPrefix(s, "rank=") {
			continue
		}
		base = append(base, a)
	}
	cmds := make([]*exec.Cmd, world)
	drained := make([]chan struct{}, world)
	for r := 0; r < world; r++ {
		cmd := exec.Command(exe, append(append([]string{}, base...), fmt.Sprintf("-rank=%d", r))...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		drained[r] = make(chan struct{})
		go func(r int) {
			defer close(drained[r])
			prefixLines(stdout, fmt.Sprintf("[rank %d] ", r))
		}(r)
		if err := cmd.Start(); err != nil {
			fatal(err)
		}
		cmds[r] = cmd
	}
	status := 0
	for r, cmd := range cmds {
		// Wait closes the pipe; read everything first or tail output is lost.
		<-drained[r]
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "bnsgcn: rank %d: %v\n", r, err)
			status = 1
		}
	}
	return status
}

func prefixLines(r io.Reader, prefix string) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			fmt.Println(prefix + line)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bnsgcn:", err)
	os.Exit(1)
}
