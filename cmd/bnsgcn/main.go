// Command bnsgcn trains a GCN with BNS-GCN partition-parallel training on a
// generated dataset and reports per-epoch statistics and final test score.
//
// By default the k partitions run as goroutines in one process over the
// channel transport. With -rendezvous the same protocol runs across OS
// processes over the TCP transport — one process per partition — which is
// bit-identical to the in-process run (the cross-backend tests in
// internal/core pin this):
//
//	bnsgcn -dataset reddit -k 8 -p 0.1 -epochs 100
//	bnsgcn -dataset yelp -k 10 -p 0.01 -arch sage -layers 4 -hidden 32
//
// The pipelined epoch schedule is the default: halo exchange overlaps
// inner-node compute and each peer's boundary rows complete in arrival
// order (identical results, lower exposed comm time). -drain=rank keeps the
// pipelining but drains peers in ascending rank order; -overlap=false falls
// back to the fully serialized baseline:
//
//	bnsgcn -dataset reddit -k 8 -p 0.1 -overlap=false
//
//	# multi-process on one machine: spawn 4 workers over loopback
//	bnsgcn -dataset reddit -p 0.1 -world 4 -rendezvous 127.0.0.1:29500 -spawn
//
//	# or launch each rank yourself (possibly on different machines):
//	bnsgcn -dataset reddit -p 0.1 -world 4 -rendezvous host0:29500 -rank 0 &
//	bnsgcn -dataset reddit -p 0.1 -world 4 -rendezvous host0:29500 -rank 1 &
//	...
//
// With -checkpoint-dir the multi-process run becomes elastic: every rank
// checkpoints atomically every -checkpoint-every epochs, a SIGKILLed rank's
// survivors re-rendezvous (any rank can serve, not just rank 0) and resume
// from the newest generation every rank holds, and a replacement process
// started with -join in the dead rank's slot is re-admitted. Final weights
// are bit-identical to an uninterrupted run:
//
//	# elastic: 4 local workers, checkpoint every 5 epochs
//	bnsgcn -dataset reddit -p 0.1 -world 4 -checkpoint-dir /tmp/ckpt -spawn
//
//	# after rank 2 dies, re-admit a replacement into its slot:
//	bnsgcn -dataset reddit -p 0.1 -world 4 -checkpoint-dir /tmp/ckpt -rank 2 -join
//
// Multi-host elastic runs list one rendezvous candidate per rank in a hosts
// file (-hosts, one host[:port] per line) and set -listen-host to the
// rank's externally reachable address.
//
// Every rank regenerates the dataset and partitioning from the shared seed,
// so no input files need distributing; ranks only exchange boundary
// features, gradients, and the weight AllReduce.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/elastic"
	"repro/internal/partition"
	"repro/internal/sampling"
)

// tagLoss is the AllReduce tag the CLI uses to aggregate the display loss
// across ranks; it sits far above the training protocol's tag range.
const tagLoss = 5000

func main() {
	var (
		dsName = flag.String("dataset", "reddit", "dataset: reddit, products, yelp")
		k      = flag.Int("k", 4, "number of partitions (simulated GPUs); ignored when -world is set")
		p      = flag.Float64("p", 0.1, "boundary node sampling rate in [0,1] (bns sampler)")

		samplerName   = flag.String("sampler", "bns", "epoch sampling strategy: bns (paper's boundary-node sampling at rate -p), ladies (partition-local layer-wise importance sampling, see -sampler-budget), saint (GraphSAINT-style subgraph sampling, see -sampler-frac)")
		samplerBudget = flag.Int("sampler-budget", 64, "ladies: expected boundary slots kept per rank per epoch (0 = keep all)")
		samplerFrac   = flag.Float64("sampler-frac", 0.5, "saint: expected fraction of each rank's inner nodes kept per epoch")
		method        = flag.String("partitioner", "metis", "metis or random")
		arch          = flag.String("arch", "sage", "model: sage or gat")
		layers        = flag.Int("layers", 0, "model depth (0 = paper default for dataset)")
		hidden        = flag.Int("hidden", 32, "hidden units")
		epochs        = flag.Int("epochs", 100, "training epochs")
		lr            = flag.Float64("lr", 0, "learning rate (0 = paper default)")
		dropout       = flag.Float64("dropout", -1, "dropout rate (-1 = paper default)")
		scale         = flag.Int("scale", 1, "dataset scale multiplier")
		seed          = flag.Uint64("seed", 1, "master seed")
		every         = flag.Int("eval-every", 10, "evaluate test score every N epochs (0 = end only)")
		overlap       = flag.Bool("overlap", true, "pipelined epoch schedule: overlap halo communication with inner-node compute (bit-identical results; -overlap=false for the serialized baseline)")
		drain         = flag.String("drain", "arrival", "overlapped drain order: arrival (complete whichever peer's halo data lands first) or rank (ascending rank order)")

		rank  = flag.Int("rank", -1, "this process's rank in a multi-process run (requires -rendezvous or -checkpoint-dir)")
		world = flag.Int("world", 0, "ranks in a multi-process run = partition count (requires -rendezvous or -checkpoint-dir)")
		rdv   = flag.String("rendezvous", "", "host:port rank 0 serves during bootstrap; enables the TCP transport")
		spawn = flag.Bool("spawn", false, "launch -world local worker processes (one per partition) and wait")

		ckptDir     = flag.String("checkpoint-dir", "", "checkpoint directory; enables elastic fault-tolerant training (requires -world; every rank and any -join replacement must see the same directory)")
		ckptEvery   = flag.Int("checkpoint-every", 5, "checkpoint cadence in epochs for elastic training")
		ckptKeep    = flag.Int("checkpoint-keep", 3, "checkpoint generations retained per rank (older ones are pruned after each save; the cohort's agreed resume generation is always kept; 0 = keep everything)")
		join        = flag.Bool("join", false, "re-admit this process into a dead rank's slot: resume the -rank given from the shared -checkpoint-dir (the training loop is identical; the flag documents intent and is validated)")
		hostsFile   = flag.String("hosts", "", "file with one rendezvous candidate per rank, host or host:port per line (# comments ok); default: loopback ports 29500+rank")
		listenHost  = flag.String("listen-host", "", "interface data listeners bind and advertise (default 127.0.0.1; multi-host runs must set this rank's reachable address)")
		hbEvery     = flag.Duration("heartbeat-interval", 2*time.Second, "TCP heartbeat cadence for wedged-peer detection in elastic runs (0 disables; only closed connections are then detected)")
		hbTimeout   = flag.Duration("heartbeat-timeout", 0, "silence after which a peer is declared wedged (0 = 4x heartbeat-interval)")
		maxRecover  = flag.Int("max-recoveries", 5, "peer deaths an elastic rank absorbs before giving up")
		resizeAfter = flag.Int("resize-after", 0, "elastic: after this many stable incomplete rendezvous rounds, the surviving ranks (at least two) elect a smaller world, repartition the dead ranks' nodes among themselves, and train on — instead of waiting for a replacement forever (0 = wait forever, the default). A later -join replacement grows the world back")
	)
	flag.Parse()

	elasticMode := *ckptDir != ""
	if *join && !elasticMode {
		fatal(fmt.Errorf("-join requires -checkpoint-dir: a replacement resumes from the cohort's shared checkpoints"))
	}
	if elasticMode && *rdv != "" {
		fatal(fmt.Errorf("-checkpoint-dir and -rendezvous are mutually exclusive: elastic runs use the per-rank candidate rendezvous (-hosts), which survives rank 0's death"))
	}
	distributed := *rdv != "" || elasticMode
	if distributed {
		if *world < 1 {
			fatal(fmt.Errorf("multi-process training requires -world >= 1, got %d", *world))
		}
		*k = *world // one partition per process
		if *spawn {
			os.Exit(spawnWorkers(*world))
		}
		if *rank < 0 || *rank >= *world {
			fatal(fmt.Errorf("-rank %d outside [0,%d); pass -spawn to launch all ranks", *rank, *world))
		}
	}
	var cands []string
	if elasticMode {
		var err error
		if cands, err = rendezvousCandidates(*hostsFile, *world); err != nil {
			fatal(err)
		}
	}

	var cfg datagen.Config
	var defLayers int
	var defLR, defDrop float64
	switch *dsName {
	case "reddit":
		cfg, defLayers, defLR, defDrop = datagen.RedditSim(*scale, *seed), 4, 0.01, 0.5
	case "products":
		cfg, defLayers, defLR, defDrop = datagen.ProductsSim(*scale, *seed), 3, 0.003, 0.3
	case "yelp":
		cfg, defLayers, defLR, defDrop = datagen.YelpSim(*scale, *seed), 4, 0.001, 0.1
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dsName))
	}
	if *layers == 0 {
		*layers = defLayers
	}
	if *lr == 0 {
		*lr = defLR
	}
	if *dropout < 0 {
		*dropout = defDrop
	}

	logf := func(format string, args ...any) { fmt.Printf(format, args...) }
	if distributed && *rank != 0 {
		logf = func(string, ...any) {} // only rank 0 narrates
	}

	logf("generating %s (scale %d)...\n", cfg.Name, *scale)
	ds, err := datagen.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	logf("graph: %d nodes, %d edges; %d classes\n", ds.G.N, ds.G.NumEdges(), ds.NumClasses)

	var pt partition.Partitioner
	switch *method {
	case "metis":
		pt = &partition.Metis{Seed: *seed}
	case "random":
		pt = &partition.Random{Seed: *seed}
	default:
		fatal(fmt.Errorf("unknown partitioner %q", *method))
	}
	parts, err := pt.Partition(ds.G, *k)
	if err != nil {
		fatal(err)
	}
	topo, err := core.BuildTopology(ds.G, parts, *k)
	if err != nil {
		fatal(err)
	}
	logf("partitioned with %s into %d parts; communication volume %d boundary nodes\n",
		pt.Name(), *k, topo.CommVolume())

	mc := core.ModelConfig{
		Arch: core.Arch(*arch), Layers: *layers, Hidden: *hidden,
		Dropout: float32(*dropout), LR: float32(*lr), Seed: *seed,
	}
	var sched core.Schedule
	switch *drain {
	case "arrival":
		sched = core.ScheduleOverlap
	case "rank":
		sched = core.ScheduleOverlapRank
	default:
		fatal(fmt.Errorf("unknown -drain %q (want arrival or rank)", *drain))
	}
	if !*overlap {
		sched = core.ScheduleSerialized
	}
	pcfg := core.ParallelConfig{Model: mc, P: *p, SampleSeed: *seed + 1, Schedule: sched}
	// The strategy is rebuilt from flags on every process, so distributed and
	// elastic ranks (including -join replacements) agree on it by
	// construction, exactly like the dataset and partitioning.
	switch *samplerName {
	case "bns":
		// Engine default; leave pcfg.Strategy nil.
	case "ladies":
		pcfg.Strategy = sampling.NewLADIESFactory(*samplerBudget, *seed+1)
		logf("sampler: partition-local LADIES, expected budget %d boundary slots per rank\n", *samplerBudget)
	case "saint":
		pcfg.Strategy = sampling.NewSAINTFactory(*samplerFrac, *seed+1)
		logf("sampler: GraphSAINT-style subgraphs, expected inner fraction %.2g per rank\n", *samplerFrac)
	default:
		fatal(fmt.Errorf("unknown -sampler %q (want bns, ladies, or saint)", *samplerName))
	}

	if distributed {
		if elasticMode {
			if *join {
				fmt.Printf("rank %d rejoining elastic cohort from %s\n", *rank, *ckptDir)
			}
			logf("training %s (%d layers, %d hidden) for %d epochs at p=%.2g on %d elastic processes over TCP (checkpoints every %d epochs in %s)\n\n",
				*arch, *layers, *hidden, *epochs, *p, *world, *ckptEvery, *ckptDir)
			trainElastic(ds, parts, topo, pcfg, elastic.RunnerConfig{
				Config: elastic.Config{
					Dir: *ckptDir, Every: *ckptEvery, Epochs: *epochs, MaxRecoveries: *maxRecover,
					KeepGenerations: *ckptKeep, ResizeAfter: *resizeAfter,
				},
				Rank: *rank, World: *world, Candidates: cands, ListenHost: *listenHost,
				HeartbeatInterval: *hbEvery, HeartbeatTimeout: *hbTimeout,
				Rejoin: *join,
			}, *every)
			return
		}
		logf("training %s (%d layers, %d hidden) for %d epochs at p=%.2g on %d processes over TCP\n\n",
			*arch, *layers, *hidden, *epochs, *p, *world)
		trainDistributed(ds, topo, pcfg, *rank, *world, *rdv, *listenHost, *epochs, *every)
		return
	}

	tr, err := core.NewParallelTrainer(ds, topo, pcfg)
	if err != nil {
		fatal(err)
	}
	logf("training %s (%d layers, %d hidden) for %d epochs at p=%.2g on %d workers\n\n",
		*arch, *layers, *hidden, *epochs, *p, *k)
	for e := 1; e <= *epochs; e++ {
		st := tr.TrainEpoch()
		if *every > 0 && e%*every == 0 {
			fmt.Printf("epoch %4d  loss %.4f  epoch time %8s  (sample %s, comm %s exposed %s, reduce %s)  test %.4f\n",
				e, st.Loss, st.TotalTime().Round(1e5), st.SampleTime.Round(1e5),
				st.CommTime.Round(1e5), st.ExposedCommTime.Round(1e5),
				st.ReduceTime.Round(1e5), tr.Evaluate(ds.TestMask))
		}
	}
	fmt.Printf("\nfinal: val %.4f  test %.4f\n", tr.Evaluate(ds.ValMask), tr.Evaluate(ds.TestMask))
}

// rendezvousCandidates builds the per-rank elastic rendezvous candidate
// list: from a hosts file (one host or host:port per line, # comments and
// blank lines skipped) or, absent one, loopback ports 29500+rank. Lines
// without a port get 29500+rank so a plain list of hostnames works. Every
// candidate must be distinct — two ranks sharing one would fight over the
// same rendezvous address and wedge the cohort — so duplicates and
// malformed entries are rejected up front, naming the offending lines.
func rendezvousCandidates(hostsFile string, world int) ([]string, error) {
	const basePort = 29500
	if hostsFile == "" {
		return elastic.LoopbackCandidates("127.0.0.1", basePort, world), nil
	}
	data, err := os.ReadFile(hostsFile)
	if err != nil {
		return nil, fmt.Errorf("-hosts: %w", err)
	}
	type entry struct {
		raw  string
		line int // 1-based line number in the file
	}
	var hosts []entry
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		hosts = append(hosts, entry{raw: line, line: i + 1})
	}
	if len(hosts) != world {
		return nil, fmt.Errorf("-hosts %s lists %d ranks, -world is %d", hostsFile, len(hosts), world)
	}
	out := make([]string, world)
	seen := make(map[string]entry, world)
	for r, h := range hosts {
		addr := h.raw
		if !strings.Contains(addr, ":") {
			addr = net.JoinHostPort(addr, strconv.Itoa(basePort+r))
		} else if _, _, err := net.SplitHostPort(addr); err != nil {
			return nil, fmt.Errorf("-hosts %s line %d: %q is not a host or host:port (IPv6 addresses need [brackets]): %v",
				hostsFile, h.line, h.raw, err)
		}
		key := strings.ToLower(addr)
		if first, dup := seen[key]; dup {
			return nil, fmt.Errorf("-hosts %s line %d (%q) conflicts with line %d (%q): both resolve to rendezvous candidate %s, but every rank needs its own — a shared candidate wedges the cohort at rendezvous",
				hostsFile, h.line, h.raw, first.line, first.raw, addr)
		}
		seen[key] = h
		out[r] = addr
	}
	return out, nil
}

// trainElastic runs this process's single rank under the elastic recovery
// loop: periodic atomic checkpoints, peer-death detection, re-rendezvous,
// and resume — bit-identical to an uninterrupted run. With -resize-after,
// a permanently lost peer shrinks the world instead of wedging it: the
// members-aware trainer factory folds the dead slots' nodes into the
// survivors' partitions (partition.ShrinkToMembers) and rebuilds the
// topology at k', with this process's mesh rank compacted to its index
// among the members; a -join replacement later grows the world back and the
// same factory sheds the absorbed rows to their original owners.
func trainElastic(ds *datagen.Dataset, parts []int32, topo *core.Topology, pcfg core.ParallelConfig,
	rc elastic.RunnerConfig, every int) {
	rank := rc.Rank
	rc.NewTrainer = memberTrainerFactory(ds, parts, topo, pcfg, rc.World)
	// The display loss here is this rank's share (the elastic loop owns the
	// transport, so the CLI cannot piggyback a display AllReduce); the test
	// score is global — replicas are identical after each epoch's reduce.
	rc.OnEpoch = func(rt *core.RankTrainer, st core.RankStats) {
		if rank == 0 && every > 0 && rt.Epoch()%every == 0 {
			fmt.Printf("epoch %4d  loss(rank 0 share) %.4f  (sample %s, comm %s exposed %s, reduce %s)  test %.4f\n",
				rt.Epoch(), st.Loss, st.Sample.Round(1e5), st.Comm.Round(1e5), st.CommExposed.Round(1e5),
				st.Reduce.Round(1e5), rt.Evaluate(ds.TestMask))
		}
	}
	rt, rep, err := elastic.Run(rc)
	if err != nil {
		fatal(err)
	}
	if rep.Recoveries > 0 {
		fmt.Printf("rank %d absorbed %d peer death(s); resumed from generation(s) %v\n",
			rank, rep.Recoveries, rep.StartGens[1:])
	}
	for _, m := range rep.Worlds {
		if len(m) < rc.World {
			fmt.Printf("rank %d trained part of the run on a shrunken world of %d (members %v)\n", rank, len(m), m)
		}
	}
	if rank == 0 {
		fmt.Printf("\nfinal: val %.4f  test %.4f\n", rt.Evaluate(ds.ValMask), rt.Evaluate(ds.TestMask))
	}
}

// memberTrainerFactory builds the per-generation trainer factory for the
// elastic loop. The full member set reuses the launch-time topology; a
// shrunken set derives its k'-way layout with partition.ShrinkToMembers and
// rebuilds the topology, memoized per member set — every recovery of the
// same membership must agree bit-for-bit, and the multilevel rebuild is too
// expensive to redo per bootstrap.
func memberTrainerFactory(ds *datagen.Dataset, parts []int32, topo *core.Topology,
	pcfg core.ParallelConfig, world int) func(members []int, slot int) (*core.RankTrainer, error) {
	type layout struct {
		topo *core.Topology
		err  error
	}
	cache := map[string]*layout{}
	var mu sync.Mutex
	return func(members []int, slot int) (*core.RankTrainer, error) {
		idx := -1
		for i, m := range members {
			if m == slot {
				idx = i
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("rank %d is not in the member set %v", slot, members)
		}
		if len(members) == world {
			return core.NewRankTrainer(ds, topo, pcfg, slot)
		}
		key := fmt.Sprint(members)
		mu.Lock()
		lo, ok := cache[key]
		if !ok {
			lo = &layout{}
			if shrunk, err := partition.ShrinkToMembers(ds.G, parts, world, members); err != nil {
				lo.err = err
			} else {
				lo.topo, lo.err = core.BuildTopology(ds.G, shrunk, len(members))
			}
			cache[key] = lo
		}
		mu.Unlock()
		if lo.err != nil {
			return nil, fmt.Errorf("shrinking partition layout to members %v: %w", members, lo.err)
		}
		return core.NewRankTrainer(ds, lo.topo, pcfg, idx)
	}
}

// trainDistributed runs this process's single rank over the TCP transport.
func trainDistributed(ds *datagen.Dataset, topo *core.Topology, pcfg core.ParallelConfig,
	rank, world int, rdv, listenHost string, epochs, every int) {
	rt, err := core.NewRankTrainer(ds, topo, pcfg, rank)
	if err != nil {
		fatal(err)
	}
	tp, err := comm.DialTCP(comm.TCPConfig{Rank: rank, World: world, Rendezvous: rdv, ListenHost: listenHost})
	if err != nil {
		fatal(err)
	}
	w := comm.NewWorker(tp)
	loss := make([]float32, 1)
	for e := 1; e <= epochs; e++ {
		st, err := rt.TrainEpoch(w)
		if err != nil {
			fatal(err)
		}
		// Aggregate the scalar training loss for display; everything else
		// the trainer needs is already exchanged inside the epoch.
		loss[0] = float32(st.Loss)
		w.AllReduceSum(loss, tagLoss)
		// Only rank 0 evaluates: replicas are identical, and full-graph
		// inference on every rank would be wasted work.
		if rank == 0 && every > 0 && e%every == 0 {
			fmt.Printf("epoch %4d  loss %.4f  (rank %d: sample %s, comm %s exposed %s, reduce %s)  test %.4f\n",
				e, loss[0], rank, st.Sample.Round(1e5), st.Comm.Round(1e5), st.CommExposed.Round(1e5),
				st.Reduce.Round(1e5), rt.Evaluate(ds.TestMask))
		}
	}
	w.Barrier()
	if rank == 0 {
		fmt.Printf("\nfinal: val %.4f  test %.4f\n", rt.Evaluate(ds.ValMask), rt.Evaluate(ds.TestMask))
		fmt.Printf("rank %d sent %d payload bytes in %d messages (%d bytes on the wire)\n",
			rank, tp.BytesSent(), tp.MessagesSent(), tp.WireBytesSent())
	}
	if err := tp.Close(); err != nil {
		fatal(err)
	}
}

// spawnWorkers re-execs this binary once per rank with the same flags plus
// -rank, prefixes each child's output with its rank, and waits for all.
func spawnWorkers(world int) int {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	var base []string
	for _, a := range os.Args[1:] {
		s := strings.TrimLeft(a, "-")
		if s == "spawn" || strings.HasPrefix(s, "spawn=") || strings.HasPrefix(s, "rank=") {
			continue
		}
		base = append(base, a)
	}
	cmds := make([]*exec.Cmd, world)
	drained := make([]chan struct{}, world)
	for r := 0; r < world; r++ {
		cmd := exec.Command(exe, append(append([]string{}, base...), fmt.Sprintf("-rank=%d", r))...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		drained[r] = make(chan struct{})
		go func(r int) {
			defer close(drained[r])
			prefixLines(stdout, fmt.Sprintf("[rank %d] ", r))
		}(r)
		if err := cmd.Start(); err != nil {
			fatal(err)
		}
		cmds[r] = cmd
	}
	status := 0
	for r, cmd := range cmds {
		// Wait closes the pipe; read everything first or tail output is lost.
		<-drained[r]
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "bnsgcn: rank %d: %v\n", r, err)
			status = 1
		}
	}
	return status
}

func prefixLines(r io.Reader, prefix string) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			fmt.Println(prefix + line)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bnsgcn:", err)
	os.Exit(1)
}
