// Command bnsgcn trains a GCN with BNS-GCN partition-parallel training on a
// generated dataset and reports per-epoch statistics and final test score.
//
// Usage:
//
//	bnsgcn -dataset reddit -k 8 -p 0.1 -epochs 100
//	bnsgcn -dataset yelp -k 10 -p 0.01 -arch sage -layers 4 -hidden 32
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/partition"
)

func main() {
	var (
		dsName  = flag.String("dataset", "reddit", "dataset: reddit, products, yelp")
		k       = flag.Int("k", 4, "number of partitions (simulated GPUs)")
		p       = flag.Float64("p", 0.1, "boundary node sampling rate in [0,1]")
		method  = flag.String("partitioner", "metis", "metis or random")
		arch    = flag.String("arch", "sage", "model: sage or gat")
		layers  = flag.Int("layers", 0, "model depth (0 = paper default for dataset)")
		hidden  = flag.Int("hidden", 32, "hidden units")
		epochs  = flag.Int("epochs", 100, "training epochs")
		lr      = flag.Float64("lr", 0, "learning rate (0 = paper default)")
		dropout = flag.Float64("dropout", -1, "dropout rate (-1 = paper default)")
		scale   = flag.Int("scale", 1, "dataset scale multiplier")
		seed    = flag.Uint64("seed", 1, "master seed")
		every   = flag.Int("eval-every", 10, "evaluate test score every N epochs (0 = end only)")
	)
	flag.Parse()

	var cfg datagen.Config
	var defLayers int
	var defLR, defDrop float64
	switch *dsName {
	case "reddit":
		cfg, defLayers, defLR, defDrop = datagen.RedditSim(*scale, *seed), 4, 0.01, 0.5
	case "products":
		cfg, defLayers, defLR, defDrop = datagen.ProductsSim(*scale, *seed), 3, 0.003, 0.3
	case "yelp":
		cfg, defLayers, defLR, defDrop = datagen.YelpSim(*scale, *seed), 4, 0.001, 0.1
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dsName))
	}
	if *layers == 0 {
		*layers = defLayers
	}
	if *lr == 0 {
		*lr = defLR
	}
	if *dropout < 0 {
		*dropout = defDrop
	}

	fmt.Printf("generating %s (scale %d)...\n", cfg.Name, *scale)
	ds, err := datagen.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; %d classes\n", ds.G.N, ds.G.NumEdges(), ds.NumClasses)

	var pt partition.Partitioner
	switch *method {
	case "metis":
		pt = &partition.Metis{Seed: *seed}
	case "random":
		pt = &partition.Random{Seed: *seed}
	default:
		fatal(fmt.Errorf("unknown partitioner %q", *method))
	}
	parts, err := pt.Partition(ds.G, *k)
	if err != nil {
		fatal(err)
	}
	topo, err := core.BuildTopology(ds.G, parts, *k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("partitioned with %s into %d parts; communication volume %d boundary nodes\n",
		pt.Name(), *k, topo.CommVolume())

	mc := core.ModelConfig{
		Arch: core.Arch(*arch), Layers: *layers, Hidden: *hidden,
		Dropout: float32(*dropout), LR: float32(*lr), Seed: *seed,
	}
	tr, err := core.NewParallelTrainer(ds, topo, core.ParallelConfig{Model: mc, P: *p, SampleSeed: *seed + 1})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("training %s (%d layers, %d hidden) for %d epochs at p=%.2g on %d workers\n\n",
		*arch, *layers, *hidden, *epochs, *p, *k)
	for e := 1; e <= *epochs; e++ {
		st := tr.TrainEpoch()
		if *every > 0 && e%*every == 0 {
			fmt.Printf("epoch %4d  loss %.4f  epoch time %8s  (sample %s, comm %s, reduce %s)  test %.4f\n",
				e, st.Loss, st.TotalTime().Round(1e5), st.SampleTime.Round(1e5),
				st.CommTime.Round(1e5), st.ReduceTime.Round(1e5), tr.Evaluate(ds.TestMask))
		}
	}
	fmt.Printf("\nfinal: val %.4f  test %.4f\n", tr.Evaluate(ds.ValMask), tr.Evaluate(ds.TestMask))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bnsgcn:", err)
	os.Exit(1)
}
