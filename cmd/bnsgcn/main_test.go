package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func writeHosts(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "hosts")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRendezvousCandidatesDefaultsToLoopback(t *testing.T) {
	cands, err := rendezvousCandidates("", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"127.0.0.1:29500", "127.0.0.1:29501", "127.0.0.1:29502"}
	if !reflect.DeepEqual(cands, want) {
		t.Fatalf("loopback candidates %v, want %v", cands, want)
	}
}

func TestRendezvousCandidatesPortDefaultingAndPassthrough(t *testing.T) {
	p := writeHosts(t, "# training cohort\nnode-a\nnode-b:4000\n\n[::1]:4001\n")
	cands, err := rendezvousCandidates(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"node-a:29500", "node-b:4000", "[::1]:4001"}
	if !reflect.DeepEqual(cands, want) {
		t.Fatalf("candidates %v, want %v", cands, want)
	}
}

func TestRendezvousCandidatesCountMismatch(t *testing.T) {
	p := writeHosts(t, "node-a\nnode-b\n")
	if _, err := rendezvousCandidates(p, 3); err == nil || !strings.Contains(err.Error(), "lists 2 ranks") {
		t.Fatalf("count mismatch not reported: %v", err)
	}
}

func TestRendezvousCandidatesRejectsMalformedEntry(t *testing.T) {
	// An unbracketed IPv6 literal parses as too many colons — the error must
	// name the file, the line, and the bracket rule.
	p := writeHosts(t, "node-a\n::1:4000\n")
	_, err := rendezvousCandidates(p, 2)
	if err == nil {
		t.Fatal("malformed host:port accepted")
	}
	for _, want := range []string{"line 2", "::1:4000", "brackets"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("malformed-entry error %q does not mention %q", err, want)
		}
	}
}

func TestRendezvousCandidatesRejectsDuplicates(t *testing.T) {
	cases := []struct {
		name  string
		hosts string
		world int
	}{
		// The same host:port written twice.
		{"verbatim", "node-a:4000\nnode-b:4000\nnode-a:4000\n", 3},
		// Hostnames are case-insensitive; these collide after canonicalizing.
		{"case-insensitive", "Node-A:4000\nnode-a:4000\n", 2},
		// A bare host on line 3 defaults to basePort+2 = 29502, which line 1
		// claimed explicitly — a collision the raw strings don't show.
		{"port-defaulting", "node-a:29502\nnode-b\nnode-a\n", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := writeHosts(t, tc.hosts)
			_, err := rendezvousCandidates(p, tc.world)
			if err == nil {
				t.Fatalf("duplicate candidate set accepted:\n%s", tc.hosts)
			}
			msg := err.Error()
			for _, want := range []string{"conflicts with line", "every rank needs its own"} {
				if !strings.Contains(msg, want) {
					t.Fatalf("duplicate error %q does not contain %q", msg, want)
				}
			}
			if !strings.Contains(msg, "line ") {
				t.Fatalf("duplicate error %q names no line numbers", msg)
			}
		})
	}
}

func TestRendezvousCandidatesSelfConflictLineNumbers(t *testing.T) {
	// Comments and blank lines must not shift the reported line numbers: the
	// duplicate pair here sits on physical lines 2 and 5.
	p := writeHosts(t, "# cohort\nnode-a:4000\nnode-b:4001\n\nnode-a:4000\n")
	_, err := rendezvousCandidates(p, 3)
	if err == nil {
		t.Fatal("duplicate accepted")
	}
	for _, want := range []string{"line 5", "line 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %s of the conflicting pair", err, want)
		}
	}
}
