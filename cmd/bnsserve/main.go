// Command bnsserve serves node-classification queries from a trained
// BNS-GCN checkpoint over HTTP: the online-inference leg of the system the
// training commands produce checkpoints for.
//
// At startup it loads the model (either checkpoint format; a trainer
// checkpoint's optimizer state is verified and discarded), regenerates the
// dataset from the shared seed exactly like the training commands do — no
// feature files need distributing — precomputes all hidden-layer embeddings,
// and then answers queries with row-subset passes over just the requested
// logit rows. Concurrent requests are coalesced into one pass per batch, hot
// rows are served from an LRU cache, and feature updates re-embed only the
// affected receptive field. Served logits are bit-identical to the
// FullTrainer evaluation path on the same checkpoint.
//
//	# train, checkpoint, then serve:
//	bnsserve -dataset reddit -checkpoint /tmp/ckpt/ckpt-r000-g00000010.bnst
//
//	# smoke/load-test mode (no checkpoint: deterministic fresh weights):
//	bnsserve -dataset reddit -addr 127.0.0.1:8090
//
//	curl 'localhost:8090/v1/predict?nodes=1,2,3'
//	curl -d '{"node":7,"features":[...]}' localhost:8090/v1/update
//	curl localhost:8090/v1/stats
//
// With -graph the adjacency comes from a binary CSR file written by bnspart
// (validated on load: corrupt headers, non-monotonic indptr, and
// out-of-range indices are rejected) instead of the generated dataset's.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/serve"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bnsserve:", err)
	os.Exit(1)
}

func main() {
	var (
		dsName = flag.String("dataset", "reddit", "dataset to regenerate for features/labels: reddit, products, yelp")
		scale  = flag.Int("scale", 1, "dataset scale multiplier")
		seed   = flag.Uint64("seed", 1, "master seed (must match the training run's)")

		ckpt      = flag.String("checkpoint", "", "checkpoint to serve (weights-only .bnsc or trainer .bnst; empty = fresh deterministic weights for smoke and load tests)")
		graphPath = flag.String("graph", "", "binary CSR graph file (bnspart -save) to serve instead of the generated dataset's adjacency; node count must match")
		arch      = flag.String("arch", "sage", "model when no checkpoint is given: sage or gat")
		layers    = flag.Int("layers", 0, "model depth when no checkpoint is given (0 = paper default for dataset)")
		hidden    = flag.Int("hidden", 32, "hidden units when no checkpoint is given")

		addr       = flag.String("addr", "127.0.0.1:8090", "listen address (host:port; port 0 picks a free port)")
		cache      = flag.Int("cache", 4096, "LRU embedding-cache capacity in logit rows")
		maxBatch   = flag.Int("max-batch", 64, "max concurrent predict requests coalesced into one row-subset pass")
		maxQueue   = flag.Int("max-queue", 0, "max predict requests waiting for the dispatcher before new ones are shed with 503 (0 = 4x max-batch)")
		retryAfter = flag.Duration("retry-after", time.Second, "backoff hint carried in shed responses' Retry-After header")
	)
	flag.Parse()

	var cfg datagen.Config
	var defLayers int
	switch *dsName {
	case "reddit":
		cfg, defLayers = datagen.RedditSim(*scale, *seed), 4
	case "products":
		cfg, defLayers = datagen.ProductsSim(*scale, *seed), 3
	case "yelp":
		cfg, defLayers = datagen.YelpSim(*scale, *seed), 4
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dsName))
	}
	if *layers == 0 {
		*layers = defLayers
	}

	fmt.Printf("generating %s (scale %d)...\n", cfg.Name, *scale)
	ds, err := datagen.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	g := ds.G
	if *graphPath != "" {
		if g, err = graph.LoadFile(*graphPath); err != nil {
			fatal(fmt.Errorf("load graph: %w", err))
		}
		fmt.Printf("serving adjacency from %s (%d nodes, %d edges)\n", *graphPath, g.N, g.NumEdges())
	}

	var model *core.Model
	if *ckpt != "" {
		if model, err = core.LoadModelFile(*ckpt); err != nil {
			fatal(fmt.Errorf("load checkpoint: %w", err))
		}
		fmt.Printf("loaded %s: %s, %d layers, %d hidden, %d -> %d\n",
			*ckpt, model.Config.Arch, model.Config.Layers, model.Config.Hidden, model.InDim, model.OutDim)
	} else {
		mc := core.ModelConfig{Arch: core.Arch(*arch), Layers: *layers, Hidden: *hidden, LR: 0.01, Seed: *seed}
		if model, err = core.NewModel(mc, ds.FeatureDim(), ds.NumClasses); err != nil {
			fatal(err)
		}
		fmt.Printf("no checkpoint: serving fresh deterministic %s/%d-layer weights (seed %d)\n", *arch, *layers, *seed)
	}

	start := time.Now()
	eng, err := serve.NewEngine(model, g, ds.Features, *cache)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("precomputed embeddings for %d nodes in %s (cache %d rows, max batch %d)\n",
		g.N, time.Since(start).Round(time.Millisecond), *cache, *maxBatch)

	srv := serve.NewServer(eng, serve.ServerConfig{MaxBatch: *maxBatch, MaxQueue: *maxQueue, RetryAfter: *retryAfter})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Printf("serving on http://%s (/v1/predict /v1/update /v1/stats /v1/healthz)\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("\n%s: draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "bnsserve: shutdown:", err)
		}
		cancel()
	case err := <-errCh:
		if err != http.ErrServerClosed {
			fatal(err)
		}
	}

	st, err := srv.Stats()
	srv.Close()
	if err == nil {
		out, _ := json.Marshal(st)
		fmt.Printf("final stats: %s\n", out)
	}
}
