// Command bnspart partitions a generated (or saved) graph and prints a
// Table-1-style boundary report: per-partition inner/boundary counts, the
// Eq. 3 communication volume, edge cut and balance.
//
// Usage:
//
//	bnspart -dataset reddit -k 10
//	bnspart -dataset papers100m -k 192 -partitioner random
//	bnspart -load graph.bin -k 8
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func main() {
	var (
		dsName = flag.String("dataset", "reddit", "dataset: reddit, products, yelp, papers100m")
		load   = flag.String("load", "", "load a binary CSR graph instead of generating")
		k      = flag.Int("k", 10, "number of partitions")
		method = flag.String("partitioner", "metis", "metis or random")
		scale  = flag.Int("scale", 1, "dataset scale multiplier")
		seed   = flag.Uint64("seed", 1, "generation and partitioning seed")
		save   = flag.String("save", "", "optionally save the generated graph to this path")
	)
	flag.Parse()

	var g *graph.Graph
	if *load != "" {
		var err error
		g, err = graph.LoadFile(*load)
		if err != nil {
			fatal(err)
		}
	} else {
		var cfg datagen.Config
		switch *dsName {
		case "reddit":
			cfg = datagen.RedditSim(*scale, *seed)
		case "products":
			cfg = datagen.ProductsSim(*scale, *seed)
		case "yelp":
			cfg = datagen.YelpSim(*scale, *seed)
		case "papers100m":
			cfg = datagen.Papers100MSim(*scale, *seed)
		default:
			fatal(fmt.Errorf("unknown dataset %q", *dsName))
		}
		cfg.StructureOnly = true
		ds, err := datagen.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		g = ds.G
	}
	if *save != "" {
		if err := graph.SaveFile(*save, g); err != nil {
			fatal(err)
		}
	}

	var pt partition.Partitioner
	switch *method {
	case "metis":
		pt = &partition.Metis{Seed: *seed}
	case "random":
		pt = &partition.Random{Seed: *seed}
	default:
		fatal(fmt.Errorf("unknown partitioner %q", *method))
	}
	parts, err := pt.Partition(g, *k)
	if err != nil {
		fatal(err)
	}
	st, err := partition.ComputeStats(g, parts, *k)
	if err != nil {
		fatal(err)
	}
	topo, err := core.BuildTopology(g, parts, *k)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("graph: %d nodes, %d edges (avg degree %.1f)\n", g.N, g.NumEdges(), g.AvgDegree())
	fmt.Printf("partitioner: %s, k=%d, balance=%.3f, edge cut=%d (%.1f%%)\n",
		pt.Name(), *k, st.Balance, st.EdgeCut, 100*float64(st.EdgeCut)/float64(g.NumEdges()))
	fmt.Printf("communication volume (Eq. 3): %d boundary nodes\n\n", topo.CommVolume())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "partition\t# inner\t# boundary\tratio\n")
	for i := 0; i < *k; i++ {
		nin, nbd := len(topo.Inner[i]), len(topo.Boundary[i])
		ratio := 0.0
		if nin > 0 {
			ratio = float64(nbd) / float64(nin)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.2f\n", i+1, nin, nbd, ratio)
	}
	tw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bnspart:", err)
	os.Exit(1)
}
