// Command bnsbench regenerates the paper's tables and figures on the
// synthetic datasets.
//
// Usage:
//
//	bnsbench -exp table4            # one experiment
//	bnsbench -exp all               # everything, in paper order
//	bnsbench -list                  # show available experiments
//	bnsbench -exp fig4 -quick       # tiny epochs, full code path
//	bnsbench -exp table4 -runs 3    # mean±std over 3 seeds
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (e.g. table4, fig5) or 'all'")
		list   = flag.Bool("list", false, "list available experiments")
		scale  = flag.Int("scale", 1, "dataset scale multiplier")
		epochs = flag.Int("epochs", 0, "override training epochs (0 = per-experiment default)")
		runs   = flag.Int("runs", 1, "repeated runs for mean±std columns")
		quick  = flag.Bool("quick", false, "truncate to a few epochs (smoke mode)")
		seed   = flag.Uint64("seed", 0, "master seed (0 = default)")
		out    = flag.String("out", "", "also write machine-readable results (JSON) to this path, for experiments that support it")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "bnsbench: -exp required (or -list); e.g. -exp table4 or -exp all")
		os.Exit(2)
	}
	o := experiments.Options{Scale: *scale, Epochs: *epochs, Runs: *runs, Quick: *quick, Seed: *seed, OutPath: *out}

	run := func(r experiments.Runner) {
		fmt.Printf("=== %s: %s ===\n", r.ID, r.Title)
		start := time.Now()
		if err := r.Run(os.Stdout, o); err != nil {
			fmt.Fprintf(os.Stderr, "bnsbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %s ---\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, r := range experiments.Registry() {
			run(r)
		}
		return
	}
	r, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "bnsbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(r)
}
