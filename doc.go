// Package repro is a from-scratch Go reproduction of "BNS-GCN: Efficient
// Full-Graph Training of Graph Convolutional Networks with
// Partition-Parallelism and Random Boundary Node Sampling" (MLSys 2022).
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for paper-vs-
// measured results. The benchmarks in bench_test.go regenerate every table
// and figure of the paper's evaluation in quick mode; cmd/bnsbench runs them
// at full size.
//
// # Communication transports
//
// The partition-parallel protocol (boundary-position exchange, per-layer
// halo forward/backward, ring AllReduce) runs over a pluggable transport
// (internal/comm.Transport). The in-process channel backend simulates k
// devices as goroutines; the TCP backend runs one OS process per partition
// over real sockets, bootstrapped from a rendezvous address, and is proven
// bit-identical to the channel backend — same weights, losses, and per-rank
// byte counts — by the cross-backend tests in internal/core. See
// cmd/bnsgcn's -rank/-world/-rendezvous flags, examples/multiproc, and the
// transport section of PERFORMANCE.md.
//
// The per-epoch protocol itself runs as a pipelined stage schedule by
// default (internal/core/pipeline.go): halo sends and receives are posted
// asynchronously, rows whose aggregation needs no boundary data compute
// while the exchange is in flight, and each peer's boundary-dependent rows
// complete in arrival order — whichever peer's payload lands first, via the
// transports' completion notifications — bit-identical to the serialized
// schedule (-overlap=false) and to the rank-order drain (-drain=rank).
// EpochStats reports communication as raw span vs exposed (unoverlapped)
// time; see PERFORMANCE.md "Overlapped halo exchange".
package repro
