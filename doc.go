// Package repro is a from-scratch Go reproduction of "BNS-GCN: Efficient
// Full-Graph Training of Graph Convolutional Networks with
// Partition-Parallelism and Random Boundary Node Sampling" (MLSys 2022).
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for paper-vs-
// measured results. The benchmarks in bench_test.go regenerate every table
// and figure of the paper's evaluation in quick mode; cmd/bnsbench runs them
// at full size.
package repro
