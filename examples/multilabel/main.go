// Multilabel: BNS-GCN on a Yelp-like multi-label dataset, scored with
// micro-F1 — exercising the sigmoid-BCE loss path the paper uses for Yelp.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/partition"
)

func main() {
	ds, err := datagen.Generate(datagen.YelpSim(1, 3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("yelp-sim: %d nodes, %d edges, %d labels/node avg, multi-label=%v\n",
		ds.G.N, ds.G.NumEdges(), 3, ds.MultiLabel)

	const k = 6
	parts, err := (&partition.Metis{Seed: 2}).Partition(ds.G, k)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := core.BuildTopology(ds.G, parts, k)
	if err != nil {
		log.Fatal(err)
	}

	for _, p := range []float64{1.0, 0.1, 0.0} {
		trainer, err := core.NewParallelTrainer(ds, topo, core.ParallelConfig{
			Model: core.ModelConfig{
				Arch: core.ArchSAGE, Layers: 4, Hidden: 32,
				Dropout: 0.1, LR: 0.003, Seed: 42,
			},
			P: p, SampleSeed: 9,
		})
		if err != nil {
			log.Fatal(err)
		}
		for epoch := 0; epoch < 120; epoch++ {
			trainer.TrainEpoch()
		}
		fmt.Printf("p=%-4.2g  test micro-F1 %.4f\n", p, trainer.Evaluate(ds.TestMask))
	}
	fmt.Println("expected shape: p=0.1 matches (or beats) p=1; p=0 is the worst (Table 4).")
}
