// GAT: BNS-GCN applied to a graph attention network (the paper's Table 10),
// demonstrating that boundary node sampling is model-agnostic: the same
// partition-parallel trainer runs GAT by switching the architecture field.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/partition"
)

func main() {
	ds, err := datagen.Generate(datagen.RedditSim(1, 5))
	if err != nil {
		log.Fatal(err)
	}
	const k = 4
	parts, err := (&partition.Metis{Seed: 3}).Partition(ds.G, k)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := core.BuildTopology(ds.G, parts, k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("2-layer GAT on %s, %d partitions\n", ds.Name, k)
	var base float64
	for _, p := range []float64{1.0, 0.1, 0.01} {
		trainer, err := core.NewParallelTrainer(ds, topo, core.ParallelConfig{
			Model: core.ModelConfig{
				Arch: core.ArchGAT, Layers: 2, Hidden: 16,
				Dropout: 0.2, LR: 0.005, Seed: 42,
			},
			P: p, SampleSeed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		var total float64
		const epochs = 15
		for epoch := 0; epoch < epochs; epoch++ {
			st := trainer.TrainEpoch()
			total += st.TotalTime().Seconds()
		}
		per := total / epochs
		if p == 1.0 {
			base = per
		}
		fmt.Printf("p=%-5.2g  epoch time %.4fs  speedup %.2fx  test acc %.4f\n",
			p, per, base/per, trainer.Evaluate(ds.TestMask))
	}
}
