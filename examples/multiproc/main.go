// Multiproc: BNS-GCN training across real OS processes on one machine. The
// parent re-execs itself once per rank; each rank process independently
// regenerates the dataset and partitioning from the shared seed, bootstraps
// the TCP transport through a loopback rendezvous address, and runs the same
// per-epoch protocol the in-process trainer uses — producing bit-identical
// weights (see TestTCPBackendBitIdenticalToChan in internal/core).
//
// This is the minimal template for crossing the process boundary: swap the
// loopback rendezvous for a reachable host:port and set TCPConfig.ListenHost
// per machine to span hosts.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/partition"
)

const (
	world  = 4
	epochs = 30
)

func main() {
	if r := os.Getenv("MULTIPROC_RANK"); r != "" {
		rank, err := strconv.Atoi(r)
		if err != nil {
			log.Fatal(err)
		}
		runRank(rank, os.Getenv("MULTIPROC_RDV"))
		return
	}

	// Parent: reserve a loopback rendezvous port and spawn one process per
	// rank. (The listener is closed before the children start; rank 0
	// re-binds the port.)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	rdv := ln.Addr().String()
	ln.Close()
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spawning %d rank processes, rendezvous at %s\n", world, rdv)
	cmds := make([]*exec.Cmd, world)
	for r := 0; r < world; r++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("MULTIPROC_RANK=%d", r), "MULTIPROC_RDV="+rdv)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		cmds[r] = cmd
	}
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
	}
}

// runRank is one rank's whole life: regenerate inputs, dial the mesh, train.
func runRank(rank int, rdv string) {
	ds, err := datagen.Generate(datagen.Config{
		Name: "multiproc", Nodes: 1200, Communities: 8, AvgDegree: 12,
		IntraFrac: 0.8, DegreeSkew: 2.0, FeatureDim: 16,
		FeatureSignal: 0.5, FeatureNoise: 1.0,
		TrainFrac: 0.6, ValFrac: 0.2, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := (&partition.Metis{Seed: 1}).Partition(ds.G, world)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := core.BuildTopology(ds.G, parts, world)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := core.NewRankTrainer(ds, topo, core.ParallelConfig{
		Model: core.ModelConfig{
			Arch: core.ArchSAGE, Layers: 2, Hidden: 16,
			Dropout: 0.3, LR: 0.01, Seed: 42,
		},
		P:          0.25,
		SampleSeed: 7,
	}, rank)
	if err != nil {
		log.Fatal(err)
	}

	tp, err := comm.DialTCP(comm.TCPConfig{
		Rank: rank, World: world, Rendezvous: rdv, Timeout: 10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	w := comm.NewWorker(tp)
	loss := make([]float32, 1)
	for epoch := 1; epoch <= epochs; epoch++ {
		st, err := rt.TrainEpoch(w)
		if err != nil {
			log.Fatal(err) // a dead peer surfaces here instead of deadlocking
		}
		loss[0] = float32(st.Loss)
		w.AllReduceSum(loss, 5000)
		if rank == 0 && epoch%10 == 0 {
			fmt.Printf("epoch %3d  loss %.4f  (rank 0 sent %d B this run)\n",
				epoch, loss[0], tp.BytesSent())
		}
	}
	w.Barrier()
	if rank == 0 {
		fmt.Printf("test accuracy: %.4f (full-graph inference with rank 0's replica)\n",
			rt.Evaluate(ds.TestMask))
	}
	if err := tp.Close(); err != nil {
		log.Fatal(err)
	}
}
