// Papers100m: the hyper-scale scenario (paper Section 4.2, Table 6 and
// Figures 3/8). The graph analogue is partitioned 192 ways; we report the
// boundary-node imbalance, the Eq. 4 memory balance under sampling, and the
// projected epoch-time breakdown on a 32-machine V100 cluster after scaling
// counts to the real graph's 111M nodes.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/datagen"
	"repro/internal/partition"
	"repro/internal/stats"
)

func main() {
	ds, err := datagen.Generate(datagen.Papers100MSim(1, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("papers100m-sim: %d nodes, %d edges (structure-only analogue of 111M-node ogbn-papers100M)\n",
		ds.G.N, ds.G.NumEdges())

	const k = 192
	parts, err := (&partition.Metis{Seed: 1}).Partition(ds.G, k)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := core.BuildTopology(ds.G, parts, k)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 3: boundary/inner imbalance.
	ratios := topo.BoundaryRatios()
	box := stats.BoxStats(ratios)
	fmt.Printf("\nboundary/inner ratio across %d partitions: median %.2f, straggler %.2f\n",
		k, box.Median, box.Max)

	// Figure 8: memory balance restored by sampling.
	dims := []int{128, 128, 128}
	for _, p := range []float64{1.0, 0.1, 0.01} {
		mems := topo.MemoryCosts(dims, p)
		var mx int64
		for _, m := range mems {
			if m > mx {
				mx = m
			}
		}
		vals := make([]float64, k)
		for i, m := range mems {
			vals[i] = float64(m) / float64(mx)
		}
		b := stats.BoxStats(vals)
		fmt.Printf("p=%-5.2g  normalized memory: q1 %.2f median %.2f q3 %.2f\n",
			p, b.Q1, b.Median, b.Q3)
	}

	// Table 6: projected epoch breakdown at real scale.
	wl := costmodel.FromTopology(topo, []int{128, 128, 128}, []int{128, 128, 172},
		128*2*128+128*2*128+128*2*172)
	scale := 111_000_000.0 / float64(ds.G.N)
	wl.MaxInner = int(float64(wl.MaxInner) * scale)
	wl.MaxBoundary = int(float64(wl.MaxBoundary) * scale)
	wl.TotalBoundary = int64(float64(wl.TotalBoundary) * scale)
	wl.MaxLocalEdges = int64(float64(wl.MaxLocalEdges) * scale * 14.4)
	wl.TotalNodes = 111_000_000

	fmt.Println("\nprojected epoch breakdown on 32×6 V100 cluster (paper Table 6 analogue):")
	for _, p := range []float64{1.0, 0.1, 0.01} {
		b := costmodel.EstimateBNS(wl, p, costmodel.MultiMachineV100)
		fmt.Printf("p=%-5.2g  total %7.1fs  comp %5.1fs  comm %7.1fs  reduce %4.1fs\n",
			p, b.Total(), b.Compute, b.Comm, b.Reduce)
	}
}
