// Reddit-sim: the paper's headline workload — a dense community graph
// trained with a 4-layer GraphSAGE model across 8 simulated GPUs, sweeping
// the boundary sampling rate p to show the throughput/accuracy trade-off
// (Figure 4 + Table 4 in one run).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/datagen"
	"repro/internal/nn"
	"repro/internal/partition"
)

func main() {
	const k = 8
	ds, err := datagen.Generate(datagen.RedditSim(1, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reddit-sim: %d nodes, %d edges, avg degree %.1f\n",
		ds.G.N, ds.G.NumEdges(), ds.G.AvgDegree())

	parts, err := (&partition.Metis{Seed: 1}).Partition(ds.G, k)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := core.BuildTopology(ds.G, parts, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d partitions, communication volume %d boundary nodes\n\n", k, topo.CommVolume())

	model := core.ModelConfig{
		Arch: core.ArchSAGE, Layers: 4, Hidden: 32,
		Dropout: 0.2, LR: 0.01, Seed: 42,
	}

	for _, p := range []float64{1.0, 0.1, 0.01} {
		trainer, err := core.NewParallelTrainer(ds, topo, core.ParallelConfig{
			Model: model, P: p, SampleSeed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		var commBytes int64
		const epochs = 60
		for epoch := 1; epoch <= epochs; epoch++ {
			st := trainer.TrainEpoch()
			commBytes += st.CommBytes
		}
		elapsed := time.Since(start)

		// Project this run onto the paper's single-machine GPU profile.
		m, _ := core.NewModel(model, ds.FeatureDim(), ds.NumClasses)
		layerOut := make([]int, len(m.LayersL))
		for i, l := range m.LayersL {
			layerOut[i] = l.OutputDim()
		}
		wl := costmodel.FromTopology(topo, m.LayerInputDims(), layerOut, nn.ParamCount(m.Layers()))
		proj := costmodel.EstimateBNS(wl, p, costmodel.SingleMachineRTX)

		fmt.Printf("p=%-5.2g  test acc %.4f  wall %6.2fs (%d epochs)  comm %6.1f MB  projected %5.1f epochs/s on 2080Ti\n",
			p, trainer.Evaluate(ds.TestMask), elapsed.Seconds(), epochs,
			float64(commBytes)/1e6, proj.Throughput())
	}
}
