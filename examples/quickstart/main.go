// Quickstart: train a 2-layer GraphSAGE model with BNS-GCN on a small
// community graph — the minimal end-to-end use of the public pipeline:
// generate → partition → build topology → train in parallel → evaluate.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/partition"
)

func main() {
	// 1. A small synthetic community graph (stand-in for your dataset).
	ds, err := datagen.Generate(datagen.Config{
		Name: "quickstart", Nodes: 1200, Communities: 8, AvgDegree: 12,
		IntraFrac: 0.8, DegreeSkew: 2.0, FeatureDim: 16,
		FeatureSignal: 0.5, FeatureNoise: 1.0,
		TrainFrac: 0.6, ValFrac: 0.2, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Partition it into 4 parts, minimizing boundary nodes (Eq. 3).
	parts, err := (&partition.Metis{Seed: 1}).Partition(ds.G, 4)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := core.BuildTopology(ds.G, parts, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned %d nodes into 4 parts; %d boundary nodes to communicate\n",
		ds.G.N, topo.CommVolume())

	// 3. Train with boundary node sampling at p = 0.1.
	trainer, err := core.NewParallelTrainer(ds, topo, core.ParallelConfig{
		Model: core.ModelConfig{
			Arch: core.ArchSAGE, Layers: 2, Hidden: 16,
			Dropout: 0.3, LR: 0.01, Seed: 42,
		},
		P:          0.1,
		SampleSeed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for epoch := 1; epoch <= 60; epoch++ {
		stats := trainer.TrainEpoch()
		if epoch%20 == 0 {
			fmt.Printf("epoch %3d  loss %.4f  comm %6d B  sampled boundary %v\n",
				epoch, stats.Loss, stats.CommBytes, stats.SampledBd)
		}
	}

	// 4. Evaluate with exact full-graph inference.
	fmt.Printf("test accuracy: %.4f\n", trainer.Evaluate(ds.TestMask))
}
