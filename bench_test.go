package repro

// One testing.B benchmark per table and figure of the paper's evaluation
// section. Each bench drives the same code path as `bnsbench -exp <id>` in
// quick mode (a few epochs), so `go test -bench=.` exercises every
// experiment end to end; full-size numbers come from cmd/bnsbench and are
// recorded in EXPERIMENTS.md.

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	o := experiments.Options{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(io.Discard, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1PartitionBoundary(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2Variance(b *testing.B)          { benchExperiment(b, "table2") }
func BenchmarkTable3Datasets(b *testing.B)          { benchExperiment(b, "table3") }
func BenchmarkTable4Accuracy(b *testing.B)          { benchExperiment(b, "table4") }
func BenchmarkTable5VsSamplers(b *testing.B)        { benchExperiment(b, "table5") }
func BenchmarkTable6Papers100M(b *testing.B)        { benchExperiment(b, "table6") }
func BenchmarkTable7RandomPartition(b *testing.B)   { benchExperiment(b, "table7") }
func BenchmarkTable8PartitionerGains(b *testing.B)  { benchExperiment(b, "table8") }
func BenchmarkTable9EdgeSampling(b *testing.B)      { benchExperiment(b, "table9") }
func BenchmarkTable10GAT(b *testing.B)              { benchExperiment(b, "table10") }
func BenchmarkTable11EpochTime(b *testing.B)        { benchExperiment(b, "table11") }
func BenchmarkTable12SamplingOverhead(b *testing.B) { benchExperiment(b, "table12") }
func BenchmarkTable13ChoiceOfP(b *testing.B)        { benchExperiment(b, "table13") }
func BenchmarkFig3BoundaryImbalance(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4Throughput(b *testing.B)          { benchExperiment(b, "fig4") }
func BenchmarkFig5TimeBreakdown(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFig6MemorySaving(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7Convergence(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig8MemoryBalance(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkAblationEstimator(b *testing.B)       { benchExperiment(b, "ablation1") }
func BenchmarkFig9ConvergenceAppendix(b *testing.B) { benchExperiment(b, "fig9") }
